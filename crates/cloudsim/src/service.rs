//! The event-driven datacenter front end.
//!
//! Everything below the engine treats the cluster as a fixed population:
//! `step_epochs` sweeps whatever VMs are placed.  A real datacenter is a
//! *process* — VMs arrive, run hot for a while, go idle, and eventually
//! depart — and the interesting throughput question is how fast the
//! simulator sustains that churn at fleet scale.  [`DatacenterService`] is
//! that front end: it consumes [`traces::VmSession`] lifecycles (the
//! Hotmail and EC2 presets in `traces::arrivals`, or any custom stream),
//! schedules them on a deterministic event queue
//! ([`queueing::EventQueue`]), batches the arrivals/idles/departures that
//! fall inside each epoch, and drives the sparse [`EpochEngine`] over the
//! resulting cluster.
//!
//! The lifecycle model is deliberately simple and exactly matches the
//! quiescence contract: a VM runs at its session's `active_load` for the
//! first part of its lifetime, then idles at load `0.0` (where the preset
//! workloads are provably static, so the sparse engine stops resolving its
//! host) until it departs.  With heavy-tailed lifetimes this converges to
//! the regime the sparse engine is built for — a small active working set
//! on top of a large quiescent fleet.
//!
//! ## Determinism
//!
//! The service is bit-reproducible: sessions are pre-sorted, the event
//! queue breaks same-instant ties in push order, VM ids are assigned
//! densely in arrival order, and placement is a pure function of the event
//! sequence (a free-slot hint queue with lazy revalidation, falling back to
//! a full first-fit scan before ever rejecting an arrival).
//!
//! ## Faults, retries and degradation
//!
//! Attaching a [`FaultPlane`] ([`DatacenterService::set_fault_plane`])
//! makes machine failure part of the event loop.  At every epoch boundary,
//! before lifecycle events apply, the service sweeps the plane's
//! counter-derived schedule: a machine entering a down window — its own
//! crash, a whole-rack or power-domain outage, or the offline phase of a
//! maintenance drain — is **evacuated** (residents re-placed across the
//! surviving fleet), and a machine leaving its window rejoins empty (its
//! quiescent cache was invalidated by the drain's generation bump) as a
//! fresh placement hint.  Evacuees that find no capacity, and rejected
//! arrivals (with or without a fault plane), are never dropped: they enter
//! a *bounded retry queue* with epoch-based exponential backoff
//! ([`RETRY_ATTEMPT_LIMIT`] attempts, doubling waits capped at
//! [`RETRY_BACKOFF_CAP_EPOCHS`] epochs) and either land when capacity frees
//! or are counted as abandoned.  All fault handling runs serially between
//! engine steps as a pure function of the epoch index, so runs stay
//! bit-identical across Serial/Sharded/Pooled execution — and a disabled
//! plane (or none) changes nothing, byte for byte.
//!
//! ## Drain protocol
//!
//! A maintenance drain is the graceful counterpart to a crash.  During the
//! notice window ([`FaultPlane::machine_draining`]) the machine keeps
//! stepping its residents but accepts no new placements, and the service
//! migrates residents out *incrementally*: each notice epoch it moves
//! `ceil(residents / epochs_remaining)` VMs, so the evacuation load is
//! spread over the whole window instead of spiking in one epoch.
//! Stragglers still resident when the machine goes offline are evacuated
//! instantly, exactly like a crash — but the down edge is counted as a
//! `maintenance_windows` stat, not a crash.
//!
//! ## Failure-domain spread
//!
//! With [`ServiceConfig::spread`] set to a [`Topology`], placement becomes
//! *spread-aware*: a two-pass next-fit scan first offers machines whose
//! power domain holds the application's minimum VM count, and only falls
//! back to any surviving machine when every minimum-count domain is full.
//! This keeps each application's VMs spread across failure domains — so a
//! rack or domain outage clips every app instead of erasing one — while
//! never rejecting a placeable VM ([`crate::audit::check_spread`] is
//! advisory for exactly this reason).  Spread is strictly opt-in and
//! orthogonal to the fault plane: it changes placement whether or not
//! faults are enabled, and leaving it `None` preserves the hint-queue +
//! next-fit policy byte for byte.

use std::collections::{BTreeMap, VecDeque};

use hwsim::{MachineSpec, EPOCH_SECONDS};
use queueing::EventQueue;
use traces::VmSession;
use workloads::{AppId, ClientEmulator, DataServing, WebSearch, Workload};

use crate::audit;
use crate::cluster::{Cluster, ClusterError};
use crate::engine::EpochEngine;
use crate::faults::{FaultPlane, Topology};
use crate::pm::{PmId, VmEpochReport};
use crate::rngs::ClusterSeed;
use crate::scheduler::Scheduler;
use crate::vm::{Vm, VmId};

/// Configuration of the datacenter front end.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of physical machines in the (homogeneous) fleet.
    pub machines: usize,
    /// Hardware model of every machine.
    pub spec: MachineSpec,
    /// Placement policy / admission checker.
    pub scheduler: Scheduler,
    /// Cluster seed driving every VM's demand streams.
    pub seed: ClusterSeed,
    /// Fraction of each VM's lifetime spent at its active load before it
    /// idles at load zero (clamped to `[0, 1]`).  The idle tail is where
    /// the sparse engine earns its keep.
    pub active_fraction: f64,
    /// Failure-domain spread policy: `Some(topology)` makes placement
    /// prefer the power domain currently holding the fewest of the
    /// arriving application's VMs (best-effort — capacity pressure falls
    /// back to any surviving machine).  `None` (the default) keeps the
    /// plain hint-queue + next-fit policy byte for byte.
    pub spread: Option<Topology>,
}

impl ServiceConfig {
    /// A Xeon X5472 fleet with default scheduling, 30% active lifetimes,
    /// no spread policy.
    pub fn xeon_fleet(machines: usize, seed: u64) -> Self {
        Self {
            machines,
            spec: MachineSpec::xeon_x5472(),
            scheduler: Scheduler::default(),
            seed: ClusterSeed::new(seed),
            active_fraction: 0.3,
            spread: None,
        }
    }

    /// Enables failure-domain spread placement under `topology`.
    pub fn with_spread(mut self, topology: Topology) -> Self {
        self.spread = Some(topology);
        self
    }
}

/// Most placement attempts a parked VM gets before it is abandoned.
pub const RETRY_ATTEMPT_LIMIT: u32 = 6;

/// Longest epoch wait between two retry attempts (backoff doubles from one
/// epoch up to this cap).
pub const RETRY_BACKOFF_CAP_EPOCHS: u64 = 32;

/// Counters the service accumulates while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// VMs successfully admitted and placed.
    pub arrivals: u64,
    /// VMs that left at the end of their session.
    pub departures: u64,
    /// Arrivals turned away because no machine could admit the VM.
    pub rejections: u64,
    /// VM-epochs simulated (sum of resident VMs over stepped epochs).
    pub vm_epochs: u64,
    /// Largest number of VMs resident at once.
    pub peak_resident: usize,
    /// Machines that entered an *unplanned* down window (own crash, rack
    /// outage, or power-domain outage).
    pub crashes: u64,
    /// Machines that went offline for *planned* maintenance (the drain
    /// notice expired); disjoint from `crashes`.
    pub maintenance_windows: u64,
    /// Machines that came back from a down window (crash or maintenance).
    pub repairs: u64,
    /// VMs re-placed immediately when their host went down.
    pub evacuations: u64,
    /// Drain notice windows the fleet entered (one per machine per drain).
    pub drains: u64,
    /// VMs migrated off a draining machine gracefully, before it went
    /// offline.
    pub drain_migrations: u64,
    /// Machine-epochs spent inside drain notice windows (still serving).
    pub draining_machine_epochs: u64,
    /// Placement attempts made from the retry queue (successes included).
    pub retries: u64,
    /// Parked VMs that eventually landed through the retry queue.
    pub retry_admissions: u64,
    /// Epochs parked VMs spent waiting before a successful retry (sum).
    pub retry_wait_epochs: u64,
    /// Parked VMs dropped after exhausting [`RETRY_ATTEMPT_LIMIT`].
    pub abandonments: u64,
    /// Unexpected placement errors recorded (see
    /// [`DatacenterService::errors`]) instead of aborting the run.
    pub placement_errors: u64,
    /// Machine-epochs spent inside crash windows (availability accounting).
    pub down_machine_epochs: u64,
}

/// A non-fatal fault the service absorbed and recorded instead of
/// panicking — an arrival must never abort the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Placement returned something other than `NoCapacity`; the service
    /// skipped the machine and kept scanning.
    UnexpectedPlacement {
        /// The VM whose placement failed.
        vm: VmId,
        /// The machine that produced the error.
        pm: PmId,
        /// The underlying cluster error.
        error: ClusterError,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnexpectedPlacement { vm, pm, error } => {
                write!(f, "placing {vm} on {pm} failed unexpectedly: {error}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// What a parked VM needs to try placement again.
#[derive(Debug)]
enum RetryPayload {
    /// A rejected arrival: session index into the stream.  The VM shell is
    /// rebuilt per attempt (construction is pure) and its lifecycle starts
    /// at the epoch it finally lands.
    Arrival(usize),
    /// An evacuee from a crashed machine: the drained VM itself.  Its
    /// lifecycle events and load slot stay live while it waits.
    Evacuee(Vm),
}

/// One entry in the bounded retry queue.
#[derive(Debug)]
struct RetryEntry {
    vm: VmId,
    payload: RetryPayload,
    /// Placement attempts already failed from the queue.
    attempts: u32,
    /// Earliest epoch the next attempt may run.
    next_epoch: u64,
    /// Epoch the VM was parked (for wait accounting).
    parked_epoch: u64,
}

/// A scheduled lifecycle transition.
#[derive(Debug, Clone, Copy)]
enum SessionEvent {
    /// Admit session `i` of the stream.
    Arrive(usize),
    /// Drop the VM's offered load to zero (it keeps its placement).
    GoIdle(VmId),
    /// Remove the VM from the cluster.
    Depart(VmId),
}

/// The event-driven datacenter: session stream in, epochs out.
#[derive(Debug)]
pub struct DatacenterService {
    cluster: Cluster,
    engine: EpochEngine,
    config: ServiceConfig,
    sessions: Vec<VmSession>,
    events: EventQueue<SessionEvent>,
    /// Offered load per VM, indexed by the densely assigned `VmId` — a
    /// plain vector, not a map, because the engine's `load_for` closure is
    /// the hottest lookup in the simulation (one call per resident VM per
    /// epoch).
    loads: Vec<f64>,
    /// Machine indices that freed capacity recently; tried (with lazy
    /// revalidation) before the first-fit scan.
    free_hint: VecDeque<usize>,
    /// Where the last successful scan placement landed; the next scan
    /// resumes here (next-fit), so steady-state placement cost stays O(1)
    /// amortized instead of rescanning the full fleet per arrival.
    scan_cursor: usize,
    stats: ServiceStats,
    /// Counter-derived fault schedule; `None` (or a disabled plane) leaves
    /// the fault path entirely inert.
    fault_plane: Option<FaultPlane>,
    /// Edge-detection mirror of the plane's down windows, indexed by
    /// machine.  Placement skips machines marked down.
    down: Vec<bool>,
    /// Edge-detection mirror of the plane's drain notice windows.
    /// Placement skips draining machines; the drain sweep migrates their
    /// residents out incrementally.
    draining: Vec<bool>,
    /// Per-application resident counts by power domain, maintained only
    /// when [`ServiceConfig::spread`] is set (the spread scan's working
    /// state).  `BTreeMap` for deterministic iteration.
    app_domains: BTreeMap<AppId, Vec<u32>>,
    /// Parked VMs (rejected arrivals and stranded evacuees) waiting out
    /// their backoff.
    retry: VecDeque<RetryEntry>,
    /// Non-fatal faults absorbed so far, in occurrence order.
    errors: Vec<ServiceError>,
}

impl DatacenterService {
    /// Builds the fleet and schedules every session's arrival.
    ///
    /// Sessions may arrive in any order; the event queue orders them.  The
    /// engine defaults to sparse serial stepping — swap it via
    /// [`DatacenterService::engine_mut`] for pooled or dense runs.
    ///
    /// # Panics
    /// Panics if `machines` is zero (the cluster constructor's contract).
    pub fn new(config: ServiceConfig, sessions: Vec<VmSession>) -> Self {
        let cluster = Cluster::homogeneous(config.machines, config.spec.clone(), config.scheduler);
        let engine = EpochEngine::serial(config.seed);
        let mut events = EventQueue::new();
        for (index, session) in sessions.iter().enumerate() {
            events.push(session.arrival_s, SessionEvent::Arrive(index));
        }
        let machines = config.machines;
        Self {
            cluster,
            engine,
            config,
            sessions,
            events,
            loads: Vec::new(),
            free_hint: VecDeque::new(),
            scan_cursor: 0,
            stats: ServiceStats::default(),
            fault_plane: None,
            down: vec![false; machines],
            draining: vec![false; machines],
            app_domains: BTreeMap::new(),
            retry: VecDeque::new(),
            errors: Vec::new(),
        }
    }

    /// Attaches a fault plane.  A disabled plane is byte-for-byte inert:
    /// the run is identical to one with no plane at all.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.fault_plane = Some(plane);
    }

    /// The attached fault plane, if any.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.fault_plane.as_ref()
    }

    /// True while `pm` is inside a down window (always false without an
    /// enabled fault plane).
    pub fn machine_down(&self, pm: PmId) -> bool {
        self.down.get(pm.0 as usize).copied().unwrap_or(false)
    }

    /// True while `pm` is inside a maintenance drain's notice window —
    /// still serving, but being migrated off and closed to new placements.
    pub fn machine_draining(&self, pm: PmId) -> bool {
        self.draining.get(pm.0 as usize).copied().unwrap_or(false)
    }

    /// VMs currently parked in the retry queue.
    pub fn parked(&self) -> usize {
        self.retry.len()
    }

    /// Non-fatal faults absorbed so far (see [`ServiceError`]).
    pub fn errors(&self) -> &[ServiceError] {
        &self.errors
    }

    /// Runs the cluster invariant audit ([`audit::check_cluster`]) plus the
    /// service-level invariants: parked VMs are not simultaneously
    /// resident, and machines inside a crash window host nothing.  Returns
    /// one message per violation (empty = consistent).
    pub fn audit(&self) -> Vec<String> {
        let mut findings = audit::check_cluster(&self.cluster);
        for entry in &self.retry {
            if self.cluster.locate(entry.vm).is_some() {
                findings.push(format!(
                    "{} is parked for retry but still resident",
                    entry.vm
                ));
            }
        }
        for (index, down) in self.down.iter().enumerate() {
            if !down {
                continue;
            }
            let pm = PmId(index as u64);
            if let Some(machine) = self.cluster.machine(pm) {
                if machine.vm_count() > 0 {
                    findings.push(format!(
                        "{pm} is inside a crash window but hosts {} VMs",
                        machine.vm_count()
                    ));
                }
            }
        }
        findings
    }

    /// Runs the advisory failure-domain spread check
    /// ([`audit::check_spread`]) under the configured spread topology.
    /// Always empty when spread placement is off.  Not part of
    /// [`DatacenterService::audit`] because capacity pressure legitimately
    /// forces co-location — assert emptiness only with known headroom.
    pub fn audit_spread(&self) -> Vec<String> {
        match &self.config.spread {
            Some(topology) => audit::check_spread(&self.cluster, topology),
            None => Vec::new(),
        }
    }

    /// The cluster being driven.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access, for a controller layered on top (DeepDive
    /// migrates VMs between epochs).  The service's placement hints are
    /// only hints — every candidate is revalidated at admission time — so
    /// external mutation cannot corrupt placement, only make the next
    /// arrival's scan marginally longer.  Pair controller-driven
    /// migrations with [`DatacenterService::note_capacity_freed`] to keep
    /// the hints warm.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The stepping engine (sparse serial by default).
    pub fn engine(&self) -> &EpochEngine {
        &self.engine
    }

    /// Mutable engine access — switch execution mode or toggle sparse
    /// stepping without rebuilding the service.
    pub fn engine_mut(&mut self) -> &mut EpochEngine {
        &mut self.engine
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Lifecycle events not yet applied (arrivals not yet due, idles and
    /// departures of resident VMs).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Tells the placement hint queue that `pm` freed some capacity — the
    /// hook a migration controller calls for each machine it moved a VM
    /// *off* (departures handled by the service itself do this
    /// automatically).
    pub fn note_capacity_freed(&mut self, pm: PmId) {
        // Spread placement scans by domain count and never consults the
        // hint queue; don't let it grow unbounded.
        if self.config.spread.is_some() {
            return;
        }
        let index = pm.0 as usize;
        if index < self.config.machines {
            self.free_hint.push_back(index);
        }
    }

    /// Sweeps the fault plane (crash drains and repairs), applies every
    /// lifecycle event due at or before the next epoch's start, runs due
    /// retry attempts, then steps the cluster one epoch and returns its
    /// reports.
    ///
    /// An arrival that no machine can admit counts as a rejection and is
    /// parked in the retry queue (its idle/departure events are scheduled
    /// only once it lands).
    pub fn step_epoch(&mut self) -> Vec<VmEpochReport> {
        let epoch = self.cluster.epoch();
        self.apply_faults(epoch);
        self.apply_due_events();
        self.apply_retries(epoch);
        let resident = self.cluster.vm_count();
        self.stats.vm_epochs += resident as u64;
        self.stats.peak_resident = self.stats.peak_resident.max(resident);
        let loads = std::mem::take(&mut self.loads);
        let reports = self
            .engine
            .step(&mut self.cluster, |vm| loads[vm.0 as usize]);
        self.loads = loads;
        reports
    }

    /// Runs `epochs` epochs, discarding reports, and returns the stats
    /// accumulated so far — the bulk-throughput entry point the datacenter
    /// bench drives.
    pub fn run_epochs(&mut self, epochs: u64) -> ServiceStats {
        for _ in 0..epochs {
            self.step_epoch();
        }
        self.stats
    }

    /// True once every session has been admitted (or rejected and either
    /// re-admitted or abandoned), the retry queue is empty, and every
    /// admitted VM has departed.
    pub fn drained(&self) -> bool {
        self.events.is_empty() && self.retry.is_empty() && self.cluster.vm_count() == 0
    }

    /// Sweeps the fault plane's down and drain windows once per epoch: a
    /// machine entering a down window is evacuated (residents re-placed or
    /// parked), a machine leaving one rejoins as a fresh placement hint,
    /// and draining machines have a slice of their residents migrated out.
    /// Inert with no plane or a disabled one.
    fn apply_faults(&mut self, epoch: u64) {
        let Some(plane) = self.fault_plane else {
            return;
        };
        if !plane.is_enabled() {
            return;
        }
        for index in 0..self.config.machines {
            let pm = PmId(index as u64);
            let now_down = plane.machine_down(pm, epoch);
            // Flip the flag *before* handling the edge so evacuation never
            // re-places a VM onto the machine that is going down.
            let was_down = std::mem::replace(&mut self.down[index], now_down);
            if now_down {
                self.stats.down_machine_epochs += 1;
                if !was_down {
                    if plane.in_maintenance(pm, epoch) {
                        self.stats.maintenance_windows += 1;
                    } else {
                        self.stats.crashes += 1;
                    }
                    self.evacuate_machine(pm, epoch);
                }
            } else if was_down {
                self.stats.repairs += 1;
                self.note_capacity_freed(pm);
            }
        }
        if plane.config().machine_drain_per_epoch > 0.0 {
            for index in 0..self.config.machines {
                let pm = PmId(index as u64);
                let now_draining = plane.machine_draining(pm, epoch);
                let was = std::mem::replace(&mut self.draining[index], now_draining);
                if now_draining {
                    self.stats.draining_machine_epochs += 1;
                    if !was {
                        self.stats.drains += 1;
                    }
                    self.drain_step(pm, epoch, &plane);
                }
            }
        }
    }

    /// Empties a machine entering a down window and re-places its residents
    /// on the surviving fleet; VMs that find no room are parked for retry.
    fn evacuate_machine(&mut self, pm: PmId, epoch: u64) {
        for vm in self.cluster.drain_machine(pm) {
            self.note_spread_removed(pm, vm.app_id());
            let id = vm.id;
            match self.place_vm(vm) {
                Ok(_) => self.stats.evacuations += 1,
                Err(evacuee) => self.park(RetryEntry {
                    vm: id,
                    payload: RetryPayload::Evacuee(evacuee),
                    attempts: 0,
                    next_epoch: epoch + 1,
                    parked_epoch: epoch,
                }),
            }
        }
    }

    /// One notice epoch of a maintenance drain: migrate
    /// `ceil(residents / epochs_remaining)` residents off `pm` so the
    /// machine empties smoothly by the time it goes offline.  Migrations
    /// that find no room park for retry like crash evacuees.
    fn drain_step(&mut self, pm: PmId, epoch: u64, plane: &FaultPlane) {
        let residents: Vec<VmId> = match self.cluster.machine(pm) {
            Some(machine) => machine.vms().iter().map(|vm| vm.id).collect(),
            None => return,
        };
        if residents.is_empty() {
            return;
        }
        let remaining = plane.drain_remaining(pm, epoch).max(1);
        let batch = residents.len().div_ceil(remaining as usize);
        for id in residents.into_iter().take(batch) {
            let Some(vm) = self.cluster.remove_vm(id) else {
                continue;
            };
            self.note_spread_removed(pm, vm.app_id());
            match self.place_vm(vm) {
                Ok(_) => self.stats.drain_migrations += 1,
                Err(evacuee) => self.park(RetryEntry {
                    vm: id,
                    payload: RetryPayload::Evacuee(evacuee),
                    attempts: 0,
                    next_epoch: epoch + 1,
                    parked_epoch: epoch,
                }),
            }
        }
    }

    fn park(&mut self, entry: RetryEntry) {
        self.retry.push_back(entry);
    }

    /// Runs every due retry attempt in park order.  Successes land (an
    /// arrival's lifecycle starts at the landing epoch; an evacuee's events
    /// stayed live); failures back off exponentially until
    /// [`RETRY_ATTEMPT_LIMIT`], then the VM is abandoned.
    fn apply_retries(&mut self, epoch: u64) {
        if self.retry.is_empty() {
            return;
        }
        let mut due = Vec::new();
        for entry in std::mem::take(&mut self.retry) {
            if entry.next_epoch > epoch {
                self.retry.push_back(entry);
            } else {
                due.push(entry);
            }
        }
        for entry in due {
            self.stats.retries += 1;
            let RetryEntry {
                vm: id,
                payload,
                attempts,
                parked_epoch,
                ..
            } = entry;
            let (vm, session_index) = match payload {
                RetryPayload::Arrival(index) => {
                    (Self::session_vm(id, &self.sessions[index]), Some(index))
                }
                RetryPayload::Evacuee(vm) => (vm, None),
            };
            match self.place_vm(vm) {
                Ok(_) => {
                    self.stats.retry_admissions += 1;
                    self.stats.retry_wait_epochs += epoch - parked_epoch;
                    if let Some(index) = session_index {
                        let session = self.sessions[index];
                        self.loads[id.0 as usize] = session.active_load.clamp(0.0, 1.0);
                        self.stats.arrivals += 1;
                        self.schedule_lifecycle(id, &session, epoch as f64 * EPOCH_SECONDS);
                    }
                }
                Err(returned) => {
                    let attempts = attempts + 1;
                    if attempts >= RETRY_ATTEMPT_LIMIT {
                        self.stats.abandonments += 1;
                        // An abandoned evacuee's stale GoIdle/Depart events
                        // fire harmlessly: the VM is neither resident nor
                        // parked by then.
                        continue;
                    }
                    let wait = (1u64 << attempts).min(RETRY_BACKOFF_CAP_EPOCHS);
                    let payload = match session_index {
                        Some(index) => RetryPayload::Arrival(index),
                        None => RetryPayload::Evacuee(returned),
                    };
                    self.park(RetryEntry {
                        vm: id,
                        payload,
                        attempts,
                        next_epoch: epoch + wait,
                        parked_epoch,
                    });
                }
            }
        }
    }

    fn apply_due_events(&mut self) {
        // Events due strictly inside a past epoch land at this boundary:
        // an arrival at t = 3.7 is resident from epoch 4 on.
        let boundary = self.cluster.epoch() as f64 * EPOCH_SECONDS;
        while let Some((_, event)) = self.events.pop_due(boundary) {
            match event {
                SessionEvent::Arrive(index) => self.admit(index),
                SessionEvent::GoIdle(vm) => {
                    self.loads[vm.0 as usize] = 0.0;
                }
                SessionEvent::Depart(vm) => {
                    if let Some(pm) = self.cluster.locate(vm) {
                        if let Some(removed) = self.cluster.remove_vm(vm) {
                            self.note_spread_removed(pm, removed.app_id());
                        }
                        self.stats.departures += 1;
                        self.note_capacity_freed(pm);
                    } else if let Some(pos) = self.retry.iter().position(|e| e.vm == vm) {
                        // The session ended while the VM sat parked (an
                        // evacuee that never found a new home): its stay is
                        // over, count the departure.
                        self.retry.remove(pos);
                        self.stats.departures += 1;
                    }
                }
            }
        }
    }

    fn admit(&mut self, index: usize) {
        let session = self.sessions[index];
        let id = VmId(self.loads.len() as u64);
        // Keep VM ids dense in arrival order even across rejections, so
        // replays with different capacity stay comparable.
        self.loads.push(0.0);
        match self.place_vm(Self::session_vm(id, &session)) {
            Ok(_) => {
                self.loads[id.0 as usize] = session.active_load.clamp(0.0, 1.0);
                self.stats.arrivals += 1;
                self.schedule_lifecycle(id, &session, session.arrival_s);
            }
            Err(_) => {
                self.stats.rejections += 1;
                let epoch = self.cluster.epoch();
                self.park(RetryEntry {
                    vm: id,
                    payload: RetryPayload::Arrival(index),
                    attempts: 0,
                    next_epoch: epoch + 1,
                    parked_epoch: epoch,
                });
            }
        }
    }

    /// Schedules a VM's idle and departure transitions from `start_s` — its
    /// arrival instant on first admission, or the landing epoch's boundary
    /// when a parked arrival finally places.
    fn schedule_lifecycle(&mut self, id: VmId, session: &VmSession, start_s: f64) {
        let active_s = session.lifetime_s * self.config.active_fraction.clamp(0.0, 1.0);
        self.events
            .push(start_s + active_s, SessionEvent::GoIdle(id));
        self.events
            .push(start_s + session.lifetime_s, SessionEvent::Depart(id));
    }

    /// The workload mix behind a session: cloud apps that are provably
    /// static when idle, keyed by popularity rank so VMs of the same app
    /// share an [`AppId`] (what lets DeepDive reuse behaviour across them).
    fn session_vm(id: VmId, session: &VmSession) -> Vm {
        let app = AppId(session.app_rank as u64);
        let workload: Box<dyn Workload> = if session.app_rank.is_multiple_of(2) {
            Box::new(DataServing::with_defaults(app))
        } else {
            Box::new(WebSearch::with_defaults(app))
        };
        let client = ClientEmulator::new(workload.peak_request_rate(), 4.0);
        Vm::new(id, workload, client)
    }

    /// Places a VM: freed-capacity hints first (lazily revalidated — stale,
    /// still-full, crashed or draining entries are simply dropped), then a
    /// next-fit scan resuming at the last placement, wrapping once around
    /// the whole fleet before giving up.  Machines that are down or
    /// draining are skipped.  With [`ServiceConfig::spread`] set the hint
    /// queue is bypassed and the scan becomes the two-pass spread scan
    /// ([`DatacenterService::place_spread`]).  Returns the hosting machine,
    /// or the VM back on a genuine reject (no surviving machine admits it
    /// right now).
    ///
    /// A placement error other than `NoCapacity` is a fault, not a
    /// rejection: it is recorded in [`DatacenterService::errors`], counted
    /// in `placement_errors`, and the scan keeps going — an arrival never
    /// aborts the simulation.
    fn place_vm(&mut self, mut vm: Vm) -> Result<PmId, Vm> {
        if let Some(topology) = self.config.spread {
            return self.place_spread(vm, topology);
        }
        while let Some(index) = self.free_hint.pop_front() {
            if self.down[index] || self.draining[index] {
                continue;
            }
            let pm = PmId(index as u64);
            match self.cluster.place_on_returning(pm, vm) {
                Ok(()) => {
                    // The machine may still have room; keep it warm for
                    // the next arrival.
                    self.free_hint.push_front(index);
                    return Ok(pm);
                }
                Err((returned, ClusterError::NoCapacity { .. })) => vm = returned,
                Err((returned, error)) => {
                    self.record_placement_error(returned.id, pm, error);
                    vm = returned;
                }
            }
        }
        let n = self.config.machines;
        for probe in 0..n {
            let index = (self.scan_cursor + probe) % n;
            if self.down[index] || self.draining[index] {
                continue;
            }
            let pm = PmId(index as u64);
            match self.cluster.place_on_returning(pm, vm) {
                Ok(()) => {
                    self.scan_cursor = index;
                    return Ok(pm);
                }
                Err((returned, ClusterError::NoCapacity { .. })) => vm = returned,
                Err((returned, error)) => {
                    self.record_placement_error(returned.id, pm, error);
                    vm = returned;
                }
            }
        }
        Err(vm)
    }

    /// The spread-aware scan: pass 1 offers only machines whose power
    /// domain currently holds the application's minimum VM count, pass 2
    /// falls back to any surviving machine.  Both passes are next-fit from
    /// the shared cursor, skip down/draining machines, and record
    /// non-capacity errors like the plain scan.
    fn place_spread(&mut self, mut vm: Vm, topology: Topology) -> Result<PmId, Vm> {
        let app = vm.app_id();
        let n = self.config.machines;
        let domains = topology.domains_in_fleet(n).max(1);
        let counts: Vec<u32> = {
            let existing = self.app_domains.get(&app);
            (0..domains)
                .map(|d| existing.and_then(|c| c.get(d)).copied().unwrap_or(0))
                .collect()
        };
        let min_count = counts.iter().copied().min().unwrap_or(0);
        for pass in 0..2 {
            for probe in 0..n {
                let index = (self.scan_cursor + probe) % n;
                if self.down[index] || self.draining[index] {
                    continue;
                }
                let pm = PmId(index as u64);
                let domain = topology.domain_of(pm) as usize;
                if pass == 0 && counts.get(domain).copied().unwrap_or(0) != min_count {
                    continue;
                }
                match self.cluster.place_on_returning(pm, vm) {
                    Ok(()) => {
                        self.scan_cursor = index;
                        self.note_spread_placed(pm, app);
                        return Ok(pm);
                    }
                    Err((returned, ClusterError::NoCapacity { .. })) => vm = returned,
                    Err((returned, error)) => {
                        self.record_placement_error(returned.id, pm, error);
                        vm = returned;
                    }
                }
            }
        }
        Err(vm)
    }

    /// Bumps the spread bookkeeping for a VM of `app` landing on `pm`.
    /// No-op unless spread placement is configured.
    fn note_spread_placed(&mut self, pm: PmId, app: AppId) {
        let Some(topology) = self.config.spread else {
            return;
        };
        let domain = topology.domain_of(pm) as usize;
        let counts = self.app_domains.entry(app).or_default();
        if counts.len() <= domain {
            counts.resize(domain + 1, 0);
        }
        counts[domain] += 1;
    }

    /// Drops the spread bookkeeping for a VM of `app` leaving `pm` (depart,
    /// evacuation, or drain migration).  No-op unless spread placement is
    /// configured.
    fn note_spread_removed(&mut self, pm: PmId, app: AppId) {
        let Some(topology) = self.config.spread else {
            return;
        };
        let domain = topology.domain_of(pm) as usize;
        if let Some(count) = self
            .app_domains
            .get_mut(&app)
            .and_then(|counts| counts.get_mut(domain))
        {
            *count = count.saturating_sub(1);
        }
    }

    fn record_placement_error(&mut self, vm: VmId, pm: PmId, error: ClusterError) {
        self.stats.placement_errors += 1;
        self.errors
            .push(ServiceError::UnexpectedPlacement { vm, pm, error });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sessions(specs: &[(f64, f64, f64, usize)]) -> Vec<VmSession> {
        specs
            .iter()
            .map(
                |&(arrival_s, lifetime_s, active_load, app_rank)| VmSession {
                    arrival_s,
                    lifetime_s,
                    active_load,
                    app_rank,
                },
            )
            .collect()
    }

    #[test]
    fn vms_arrive_idle_and_depart_on_schedule() {
        let service_sessions = sessions(&[
            (0.0, 10.0, 0.8, 1),
            (0.5, 4.0, 0.6, 2), // departs at 4.5 → gone from epoch 5
            (3.0, 100.0, 0.7, 1),
        ]);
        let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(2, 1), service_sessions);
        let first = svc.step_epoch(); // epoch 0: arrivals at t <= 0.0
        assert_eq!(first.len(), 1);
        let second = svc.step_epoch(); // epoch 1: the t = 0.5 arrival joined
        assert_eq!(second.len(), 2);
        let mut reports = Vec::new();
        for _ in 2..6 {
            reports.push(svc.step_epoch());
        }
        // Epoch 4 still has VM 1 (departs at 4.5 → removed at epoch 5).
        assert_eq!(reports[2].len(), 3, "epoch 4: all three resident");
        assert_eq!(reports[3].len(), 2, "epoch 5: VM 1 departed");
        let stats = svc.stats();
        assert_eq!(stats.arrivals, 3);
        assert_eq!(stats.departures, 1);
        assert_eq!(stats.rejections, 0);
        assert_eq!(stats.peak_resident, 3);
    }

    #[test]
    fn active_vms_go_idle_after_their_active_fraction() {
        // One VM, 10 s lifetime, 30% active → load 0.9 through epoch 3,
        // then 0.0 from epoch 4 (idle event at t = 3.0 applies at its
        // boundary... the event lands at the first boundary >= 3.0).
        let mut svc = DatacenterService::new(
            ServiceConfig::xeon_fleet(1, 2),
            sessions(&[(0.0, 10.0, 0.9, 2)]),
        );
        let mut offered = Vec::new();
        for _ in 0..6 {
            let reports = svc.step_epoch();
            offered.push(reports[0].offered_load);
        }
        assert_eq!(offered[..3], [0.9, 0.9, 0.9]);
        assert_eq!(offered[3..], [0.0, 0.0, 0.0]);
        // Once idle, the sparse engine stops resolving the machine.
        let resolves_when_idle = svc.cluster().total_resolves();
        svc.run_epochs(5);
        assert_eq!(svc.cluster().total_resolves(), resolves_when_idle);
        assert!(svc.cluster().total_quiescent_steps() >= 5);
    }

    #[test]
    fn a_full_fleet_rejects_and_recovers_capacity_on_departure() {
        // One Xeon machine admits four 2-vCPU VMs; offer six, two overflow
        // and park in the retry queue (backed off to epochs 2, 4, 8, 16,
        // 32, 64 after the epoch-1 rejection).
        let mut specs: Vec<(f64, f64, f64, usize)> =
            (0..6).map(|i| (i as f64 * 0.01, 50.0, 0.5, 1)).collect();
        // A late VM arrives after the four residents depart.
        specs.push((60.0, 5.0, 0.5, 1));
        let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(1, 3), sessions(&specs));
        svc.run_epochs(55);
        let mid = svc.stats();
        assert_eq!(mid.arrivals, 4);
        assert_eq!(mid.rejections, 2);
        assert_eq!(mid.departures, 4);
        assert_eq!(svc.parked(), 2, "rejected arrivals wait, they don't vanish");
        // The epoch-64 retry lands on the drained fleet: recovery after
        // retry, not a permanent loss.
        svc.run_epochs(60);
        let done = svc.stats();
        assert_eq!(
            done.arrivals, 7,
            "freed capacity must admit late and retried VMs"
        );
        assert_eq!(done.departures, 7);
        assert_eq!(done.rejections, 2);
        assert_eq!(done.retry_admissions, 2);
        assert_eq!(done.retries, 12, "six attempts per parked VM");
        assert_eq!(done.abandonments, 0);
        assert_eq!(svc.parked(), 0);
        assert!(svc.drained());
    }

    #[test]
    fn parked_vms_abandon_after_the_retry_budget() {
        // Residents outlive every backoff step (2..64), so the two parked
        // arrivals exhaust their six attempts and are abandoned.
        let specs: Vec<(f64, f64, f64, usize)> =
            (0..6).map(|i| (i as f64 * 0.01, 200.0, 0.5, 1)).collect();
        let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(1, 4), sessions(&specs));
        svc.run_epochs(80);
        let stats = svc.stats();
        assert_eq!(stats.rejections, 2);
        assert_eq!(stats.retries, 12);
        assert_eq!(stats.retry_admissions, 0);
        assert_eq!(stats.abandonments, 2);
        assert_eq!(svc.parked(), 0);
        // The abandoned sessions scheduled no lifecycle events; the run
        // still drains once the residents depart.
        svc.run_epochs(125);
        assert_eq!(svc.stats().departures, 4);
        assert!(svc.drained());
    }

    #[test]
    fn crashes_evacuate_residents_and_the_audit_stays_clean() {
        let stream = traces::hotmail_sessions(20_000.0, 0.01, 5);
        let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(8, 21), stream);
        svc.set_fault_plane(FaultPlane::new(77, crate::faults::FaultConfig::light()));
        for _ in 0..400 {
            svc.step_epoch();
            assert_eq!(svc.audit(), Vec::<String>::new());
        }
        let stats = svc.stats();
        assert!(stats.crashes > 0, "light faults over 400 epochs must crash");
        assert!(stats.repairs > 0, "crash windows are finite");
        assert!(stats.down_machine_epochs > 0);
        assert!(
            stats.evacuations + stats.retries > 0,
            "crashed machines held VMs at some point"
        );
        assert!(stats.arrivals >= stats.departures);
    }

    #[test]
    fn maintenance_drains_are_gentler_than_crashes_at_equal_downtime() {
        // Same start rate and offline windows; the only difference is the
        // 8-epoch drain notice. Disruption (instant evacuations + parked
        // retries) must drop when machines leave gracefully.
        let stream = traces::hotmail_sessions(20_000.0, 0.01, 5);
        let run = |config: crate::faults::FaultConfig| {
            let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(8, 21), stream.clone());
            svc.set_fault_plane(FaultPlane::new(77, config));
            for _ in 0..400 {
                svc.step_epoch();
                assert_eq!(svc.audit(), Vec::<String>::new());
            }
            svc.stats()
        };
        let crash = run(crate::faults::FaultConfig::light());
        let drain = run(crate::faults::FaultConfig::maintenance());
        assert!(crash.crashes > 0);
        assert_eq!(crash.drain_migrations, 0, "no drains configured");
        assert_eq!(drain.crashes, 0, "planned maintenance never crashes");
        assert!(drain.maintenance_windows > 0, "drains must go offline");
        assert!(drain.drains > 0);
        assert!(
            drain.drain_migrations > 0,
            "notice windows must migrate residents gracefully: {drain:?}"
        );
        assert!(drain.draining_machine_epochs >= drain.drains);
        // The graceful run displaces fewer VMs instantly: most residents
        // left during the notice, so offline-edge evacuations shrink.
        assert!(
            drain.evacuations < crash.evacuations,
            "drain {drain:?} vs crash {crash:?}"
        );
    }

    #[test]
    fn spread_placement_spreads_an_app_across_power_domains() {
        // 8 machines, 2 per rack, 2 racks per domain → power domain 0 holds
        // machines 0..4, domain 1 holds 4..8.  Six 2-vCPU VMs of one app
        // fit comfortably anywhere (a Xeon holds four each).
        let topo = Topology::new(2, 2);
        let specs: Vec<(f64, f64, f64, usize)> =
            (0..6).map(|i| (i as f64 * 0.01, 500.0, 0.5, 1)).collect();
        // Plain next-fit packs the app into domain 0's first two machines.
        let mut packed = DatacenterService::new(ServiceConfig::xeon_fleet(8, 3), sessions(&specs));
        packed.run_epochs(2);
        assert_eq!(packed.stats().arrivals, 6);
        assert!(packed.audit_spread().is_empty(), "spread off → no findings");
        assert_eq!(
            audit::check_spread(packed.cluster(), &topo).len(),
            1,
            "next-fit concentrates the app in one domain"
        );
        // The spread scan balances the same stream across both domains.
        let mut spread = DatacenterService::new(
            ServiceConfig::xeon_fleet(8, 3).with_spread(topo),
            sessions(&specs),
        );
        spread.run_epochs(2);
        assert_eq!(spread.stats().arrivals, 6);
        assert_eq!(spread.stats().rejections, 0);
        assert_eq!(spread.audit(), Vec::<String>::new());
        assert_eq!(spread.audit_spread(), Vec::<String>::new());
        let per_domain: Vec<usize> = [0..4usize, 4..8]
            .into_iter()
            .map(|range| {
                range
                    .filter_map(|i| spread.cluster().machine(PmId(i as u64)))
                    .map(|m| m.vm_count())
                    .sum()
            })
            .collect();
        assert_eq!(per_domain, vec![3, 3], "placement alternates domains");
    }

    #[test]
    fn spread_placement_survives_faults_with_a_clean_audit() {
        let topo = Topology::new(2, 2);
        let stream = traces::hotmail_sessions(20_000.0, 0.01, 9);
        let mut svc =
            DatacenterService::new(ServiceConfig::xeon_fleet(8, 21).with_spread(topo), stream);
        svc.set_fault_plane(FaultPlane::new(
            77,
            crate::faults::FaultConfig::rack_outages(topo),
        ));
        for _ in 0..400 {
            svc.step_epoch();
            assert_eq!(svc.audit(), Vec::<String>::new());
        }
        let stats = svc.stats();
        assert!(stats.crashes > 0, "rack outages must fell machines");
        assert!(stats.arrivals > 0);
    }

    #[test]
    fn a_disabled_fault_plane_changes_nothing_byte_for_byte() {
        let stream = traces::hotmail_sessions(30_000.0, 0.008, 13);
        let run = |plane: Option<FaultPlane>| {
            let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(6, 17), stream.clone());
            if let Some(plane) = plane {
                svc.set_fault_plane(plane);
            }
            let mut all = Vec::new();
            for _ in 0..200 {
                all.push(svc.step_epoch());
            }
            (all, svc.stats())
        };
        let bare = run(None);
        let disabled = run(Some(FaultPlane::new(
            123,
            crate::faults::FaultConfig::disabled(),
        )));
        assert_eq!(bare, disabled);
    }

    #[test]
    fn unexpected_placement_errors_are_recorded_not_fatal() {
        let mut svc = DatacenterService::new(
            ServiceConfig::xeon_fleet(1, 6),
            sessions(&[(0.0, 10.0, 0.5, 1)]),
        );
        svc.step_epoch();
        assert!(svc.errors().is_empty());
        svc.record_placement_error(VmId(9), PmId(4), ClusterError::UnknownPm(PmId(4)));
        assert_eq!(svc.stats().placement_errors, 1);
        assert_eq!(svc.errors().len(), 1);
        let shown = svc.errors()[0].to_string();
        assert!(shown.contains("failed unexpectedly"), "got: {shown}");
        // The simulation keeps stepping normally afterwards.
        svc.run_epochs(15);
        assert!(svc.drained());
    }

    #[test]
    fn the_run_is_bit_reproducible_and_dense_equals_sparse() {
        let stream = traces::hotmail_sessions(40_000.0, 0.005, 11);
        assert!(stream.len() > 20, "want a busy little stream");
        let run = |sparse: bool| {
            let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(12, 7), stream.clone());
            svc.engine_mut().set_sparse(sparse);
            let mut all = Vec::new();
            for _ in 0..400 {
                all.push(svc.step_epoch());
            }
            (all, svc.stats())
        };
        let (sparse_reports, sparse_stats) = run(true);
        let (dense_reports, dense_stats) = run(false);
        assert_eq!(sparse_reports, dense_reports);
        assert_eq!(sparse_stats, dense_stats);
        assert!(sparse_stats.arrivals > 0);
        assert!(sparse_stats.vm_epochs > 0);
    }

    #[test]
    fn note_capacity_freed_keeps_external_migrations_warm() {
        let mut svc = DatacenterService::new(
            ServiceConfig::xeon_fleet(3, 9),
            sessions(&[(0.0, 100.0, 0.5, 1), (20.0, 100.0, 0.5, 1)]),
        );
        svc.step_epoch();
        // Externally migrate VM 0 from machine 0 to machine 2, as the
        // DeepDive controller would, then report the freed source.
        let vm = VmId(0);
        let from = svc.cluster().locate(vm).expect("vm 0 resident");
        svc.cluster_mut()
            .migrate(vm, PmId(2))
            .expect("room on pm 2");
        svc.note_capacity_freed(from);
        // The next arrival (t = 20) lands on the freed machine first.
        svc.run_epochs(25);
        assert_eq!(svc.cluster().locate(VmId(1)), Some(from));
    }
}
