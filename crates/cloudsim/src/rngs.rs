//! Deterministic, order-independent RNG streams for the cluster simulation.
//!
//! Before the epoch engine existed, one `StdRng` was threaded sequentially
//! through every machine and VM: each demand draw consumed from the same
//! shared stream, so a VM's inputs depended on *where it sat in the
//! iteration order*.  Any placement change — a migration, a removal, even
//! reordering machines — silently perturbed every later VM's stream, and
//! machines could never step concurrently.
//!
//! [`ClusterSeed`] replaces that with counter-based derivation: an
//! independent [`StdRng`] per `(vm, epoch)` pair, obtained by hashing the
//! cluster seed, the VM id and the epoch index through SplitMix64-style
//! finalizers.  A VM's demand sequence is therefore a pure function of its
//! identity, the epoch and the cluster seed — independent of which machine
//! hosts it, of what else is placed, and of the order (or thread) in which
//! machines are stepped.  That property is what lets
//! [`crate::engine::EpochEngine`] run shards on different threads and still
//! produce output bit-identical to a serial sweep.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::vm::VmId;

/// SplitMix64 finalizer: a full-avalanche 64-bit mix (every input bit flips
/// each output bit with probability ≈ 1/2), the same construction the `rand`
/// shim uses to expand seeds.
///
/// Public because other crates derive their own counter-based streams from
/// it (e.g. `deepdive`'s parallel synthetic-benchmark trainer hashes
/// `(training seed, sample index)` so every training sample gets an
/// independent stream regardless of which thread resolves it).
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The root seed of a simulated cluster: the single knob that determines
/// every VM's demand stream for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterSeed(u64);

impl ClusterSeed {
    /// Wraps a root seed.
    pub const fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// The root seed value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The derived 64-bit seed of the `(vm, epoch)` stream.
    ///
    /// Two finalizer layers keep the three inputs from interacting
    /// additively: the VM id is avalanched before it touches the root seed,
    /// so `(vm: 1, epoch: 0)` and `(vm: 0, epoch: 1)` (and every other
    /// colliding sum) land in unrelated streams.
    pub const fn stream_seed(self, vm: VmId, epoch: u64) -> u64 {
        splitmix64(splitmix64(self.0 ^ splitmix64(vm.0)) ^ epoch)
    }

    /// An independent, stable generator for one VM's demand draws in one
    /// epoch.  Pure function of `(self, vm, epoch)` — callers may derive it
    /// in any order, from any thread, any number of times.
    pub fn vm_epoch_rng(self, vm: VmId, epoch: u64) -> StdRng {
        StdRng::seed_from_u64(self.stream_seed(vm, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let seed = ClusterSeed::new(42);
        let a: Vec<u64> = {
            let mut r = seed.vm_epoch_rng(VmId(7), 3);
            (0..8).map(|_| r.gen_range(0..1_000_000u64)).collect()
        };
        let b: Vec<u64> = {
            let mut r = seed.vm_epoch_rng(VmId(7), 3);
            (0..8).map(|_| r.gen_range(0..1_000_000u64)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_across_vm_epoch_and_seed() {
        let base = ClusterSeed::new(1).stream_seed(VmId(1), 1);
        assert_ne!(base, ClusterSeed::new(1).stream_seed(VmId(2), 1));
        assert_ne!(base, ClusterSeed::new(1).stream_seed(VmId(1), 2));
        assert_ne!(base, ClusterSeed::new(2).stream_seed(VmId(1), 1));
    }

    #[test]
    fn additive_collisions_do_not_alias() {
        // (vm, epoch) pairs with equal vm + epoch sums must still get
        // distinct streams — the failure mode of a naive seed ^ vm ^ epoch.
        let seed = ClusterSeed::new(9);
        let mut seen = std::collections::HashSet::new();
        for vm in 0..32u64 {
            for epoch in 0..32u64 {
                assert!(
                    seen.insert(seed.stream_seed(VmId(vm), epoch)),
                    "stream collision at vm {vm}, epoch {epoch}"
                );
            }
        }
    }

    #[test]
    fn derivation_is_order_independent() {
        // Deriving other streams in between must not affect a stream.
        let seed = ClusterSeed::new(5);
        let direct: f64 = seed.vm_epoch_rng(VmId(3), 10).gen_range(0.0..1.0);
        let _noise: f64 = seed.vm_epoch_rng(VmId(99), 2).gen_range(0.0..1.0);
        let again: f64 = seed.vm_epoch_rng(VmId(3), 10).gen_range(0.0..1.0);
        assert_eq!(direct, again);
    }
}
