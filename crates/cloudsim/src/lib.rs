//! # cloudsim — virtualization substrate (the IaaS "cloud")
//!
//! The paper deploys DeepDive on a 10-server Xen testbed: VMs are pinned to
//! dedicated core pairs, client traffic flows through a proxy that can
//! duplicate requests towards a sandboxed clone, and the placement manager
//! migrates VMs between physical machines (§4, §5.1).  None of that
//! infrastructure exists here, so this crate provides the equivalent
//! simulated objects:
//!
//! * [`vm`] — a virtual machine: identity, size, attached workload and
//!   client emulator.
//! * [`pm`] — a physical machine: a [`hwsim::MachineSpec`] plus the VMs
//!   currently hosted on it; stepping an epoch resolves contention and
//!   yields per-VM reports (counters + client-side ground truth).
//! * [`scheduler`] — vCPU/cache-group placement policies (packed vs spread)
//!   and admission checks.
//! * [`cluster`] — the datacenter: a set of PMs (homogeneous or mixed
//!   hardware) and VM migration.
//! * [`rngs`] — [`rngs::ClusterSeed`]: counter-based derivation of one
//!   independent RNG stream per `(vm, epoch)`, making every VM's demand
//!   sequence a pure function of its id, the epoch and the cluster seed —
//!   independent of placement and stepping order.
//! * [`pool`] — [`pool::WorkerPool`]: persistent worker threads with
//!   per-worker queues and a barrier-style `scatter`, the execution
//!   substrate behind pooled stepping (and, via `deepdive`, parallel model
//!   refits and benchmark training); plus [`pool::split_balanced`], the
//!   shard partitioner every parallel path shares.
//! * [`engine`] — [`engine::EpochEngine`]: epoch stepping as a policy
//!   object — [`engine::ExecutionMode::Serial`],
//!   [`engine::ExecutionMode::Sharded`] (spawn-per-call scoped threads,
//!   the measured baseline) or [`engine::ExecutionMode::Pooled`]
//!   (persistent [`pool::WorkerPool`], the production mode) — with
//!   bit-identical output in every mode and a barrier-first panic policy.
//! * [`service`] — [`service::DatacenterService`]: the event-driven
//!   datacenter front end — VM sessions arrive, run hot, go idle and
//!   depart per a `traces` session stream, batched between epochs and fed
//!   to the sparse engine (see `engine`'s "Service mode & sparse
//!   stepping").
//! * [`proxy`] — records each VM's offered load / demand stream so it can be
//!   replayed, mimicking the request-duplicating proxy of §4.2.
//! * [`sandbox`] — the sandboxed environment: dedicated machines on which a
//!   recorded demand stream is re-run in isolation (non-work-conserving,
//!   nothing co-located).  [`sandbox::Sandbox`] is one pool of a single
//!   machine model; [`sandbox::SandboxFleet`] holds one pool per model in a
//!   mixed-hardware cluster and routes each analysis to the pool matching
//!   the victim's host, so counters are never compared across models.
//! * [`migration`] — live-migration cost model.
//! * [`faults`] — [`faults::FaultPlane`]: a counter-derived, topology-aware
//!   fault schedule (machine crash/repair windows, correlated rack and
//!   power-domain outages over a [`faults::Topology`], planned maintenance
//!   drains with graceful notice windows, transient migration failures,
//!   sandbox pool outages) that is a pure function of `(fault seed, kind,
//!   entity, epoch)` — same SplitMix64 discipline as [`rngs::ClusterSeed`],
//!   so fault runs stay bit-identical across execution modes.
//! * [`audit`] — [`audit::check_cluster`]: the cluster invariant sweep (no
//!   VM lost or doubly resident, id→index maps consistent, capacity
//!   accounting exact) the chaos suite asserts after every epoch; plus
//!   [`audit::check_spread`], the advisory failure-domain spread check.
//!
//! DeepDive (crate `deepdive`) consumes only the [`pm::VmEpochReport`]s'
//! counter snapshots and app identities; the client observations and stall
//! breakdowns in the same struct are evaluation-only ground truth.

pub mod audit;
pub mod cluster;
pub mod engine;
pub mod faults;
pub mod migration;
pub mod pm;
pub mod pool;
pub mod proxy;
pub mod rngs;
pub mod sandbox;
pub mod scheduler;
pub mod service;
pub mod vm;

pub use cluster::Cluster;
pub use engine::{AdvanceSummary, EpochEngine, ExecutionMode};
pub use faults::{FaultConfig, FaultPlane, Topology};
pub use pm::{PhysicalMachine, PmId, VmEpochReport};
pub use pool::WorkerPool;
pub use proxy::RequestProxy;
pub use rngs::ClusterSeed;
pub use sandbox::{Sandbox, SandboxFleet};
pub use scheduler::{PlacementPolicy, Scheduler};
pub use service::{DatacenterService, ServiceConfig, ServiceError, ServiceStats};
pub use vm::{Vm, VmId};
