//! Virtual machines.
//!
//! A [`Vm`] bundles everything the provider knows about a tenant VM — its
//! size (vCPUs, memory) — with the things the provider explicitly does *not*
//! get to look inside: the workload generating its resource demands and the
//! client emulator that measures tenant-visible performance.  The latter two
//! exist only so the simulation can produce counters and ground truth; the
//! DeepDive crate never touches them.

use workloads::{AppId, ClientEmulator, Workload};

/// Unique identifier of a VM within the simulated cloud.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct VmId(pub u64);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// A tenant virtual machine.
pub struct Vm {
    /// Unique identifier.
    pub id: VmId,
    /// Number of dedicated vCPUs (pinned to physical cores, as in §5.1).
    pub vcpus: usize,
    /// Memory allocation in MiB.
    pub memory_mb: f64,
    /// The tenant's application (opaque to the provider).
    pub workload: Box<dyn Workload>,
    /// Client emulator producing tenant-visible performance ground truth.
    pub client: ClientEmulator,
}

impl Vm {
    /// Creates a VM with the paper's default shape: two dedicated vCPUs and
    /// 2 GiB of memory (§5.1 gives each VM two cores and enough memory to
    /// avoid swapping).
    pub fn new(id: VmId, workload: Box<dyn Workload>, client: ClientEmulator) -> Self {
        Self {
            id,
            vcpus: 2,
            memory_mb: 2_048.0,
            workload,
            client,
        }
    }

    /// Creates a VM with an explicit shape.
    ///
    /// # Panics
    /// Panics if `vcpus` is zero or `memory_mb` is not positive.
    pub fn with_shape(
        id: VmId,
        vcpus: usize,
        memory_mb: f64,
        workload: Box<dyn Workload>,
        client: ClientEmulator,
    ) -> Self {
        assert!(vcpus > 0, "a VM needs at least one vCPU");
        assert!(memory_mb > 0.0, "a VM needs positive memory");
        Self {
            id,
            vcpus,
            memory_mb,
            workload,
            client,
        }
    }

    /// Application identity (which code the VM runs), used by DeepDive's
    /// global-information check.
    pub fn app_id(&self) -> AppId {
        self.workload.app_id()
    }
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("id", &self.id)
            .field("vcpus", &self.vcpus)
            .field("memory_mb", &self.memory_mb)
            .field("workload", &self.workload.name())
            .field("app", &self.app_id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::DataServing;

    fn sample_vm() -> Vm {
        Vm::new(
            VmId(7),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(8_000.0, 4.0),
        )
    }

    #[test]
    fn default_shape_matches_paper_testbed() {
        let vm = sample_vm();
        assert_eq!(vm.vcpus, 2);
        assert_eq!(vm.memory_mb, 2_048.0);
        assert_eq!(vm.app_id(), AppId(1));
    }

    #[test]
    fn display_and_debug_are_informative() {
        let vm = sample_vm();
        assert_eq!(format!("{}", vm.id), "vm-7");
        let dbg = format!("{vm:?}");
        assert!(dbg.contains("data-serving"));
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn zero_vcpus_rejected() {
        Vm::with_shape(
            VmId(1),
            0,
            1024.0,
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(100.0, 1.0),
        );
    }
}
