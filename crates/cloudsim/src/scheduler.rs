//! vCPU / cache-group placement policies and admission control.
//!
//! The Xen configuration in the paper pins each VM's vCPUs to dedicated
//! cores (§5.1).  What the scheduler decides in our model is *which
//! last-level-cache group* a VM's cores belong to, because that determines
//! which VMs contend in the shared cache:
//!
//! * [`PlacementPolicy::Pack`] groups consecutive VMs onto the same cache
//!   group, reproducing the co-location that makes cache interference
//!   possible (the paper's default situation), while
//! * [`PlacementPolicy::Spread`] spreads VMs across cache groups, which the
//!   ablation benches use to show cache interference disappearing while
//!   machine-wide resources (bus, disk, NIC) still contend.
//!
//! The scheduler also performs admission control (core and memory capacity)
//! and offers the non-work-conserving flag used by the sandbox (§4.2), which
//! in this model simply means the sandbox never hosts more than one VM.

use hwsim::MachineSpec;

use crate::vm::Vm;

/// How VMs are distributed over the machine's shared-cache groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Fill cache groups two VMs at a time: co-located VMs share a cache.
    Pack,
    /// Round-robin VMs across cache groups: minimal cache sharing.
    Spread,
}

/// The per-PM scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduler {
    /// Cache-group placement policy.
    pub policy: PlacementPolicy,
    /// When true the machine admits only a single VM and gives it exclusive,
    /// tightly-controlled resources — the sandbox configuration of §4.2.
    pub non_work_conserving: bool,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self {
            policy: PlacementPolicy::Pack,
            non_work_conserving: false,
        }
    }
}

impl Scheduler {
    /// Production scheduler with the given placement policy.
    pub fn production(policy: PlacementPolicy) -> Self {
        Self {
            policy,
            non_work_conserving: false,
        }
    }

    /// Sandbox scheduler: exclusive, non-work-conserving.
    pub fn sandbox() -> Self {
        Self {
            policy: PlacementPolicy::Pack,
            non_work_conserving: true,
        }
    }

    /// Returns the cache-group index for the VM occupying `slot` (its index
    /// in the host's VM list).
    pub fn cache_group_for_slot(&self, spec: &MachineSpec, slot: usize) -> usize {
        let groups = spec.cache_groups().max(1);
        match self.policy {
            // Two VMs per group before moving on: slot 0,1 -> group 0,
            // slot 2,3 -> group 1, ...
            PlacementPolicy::Pack => (slot / 2) % groups,
            PlacementPolicy::Spread => slot % groups,
        }
    }

    /// Admission check: can `candidate` be added to a machine already hosting
    /// `resident` VMs?
    pub fn admits(&self, spec: &MachineSpec, resident: &[Vm], candidate: &Vm) -> bool {
        if self.non_work_conserving && !resident.is_empty() {
            return false;
        }
        let used_cores: usize = resident.iter().map(|v| v.vcpus).sum();
        let used_memory: f64 = resident.iter().map(|v| v.memory_mb).sum();
        used_cores + candidate.vcpus <= spec.cores
            && used_memory + candidate.memory_mb <= spec.dram_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;
    use workloads::{AppId, ClientEmulator, DataServing};

    fn vm(id: u64) -> Vm {
        Vm::new(
            VmId(id),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(1_000.0, 5.0),
        )
    }

    #[test]
    fn pack_policy_pairs_vms_on_the_same_cache_group() {
        let spec = MachineSpec::xeon_x5472();
        let s = Scheduler::production(PlacementPolicy::Pack);
        assert_eq!(s.cache_group_for_slot(&spec, 0), 0);
        assert_eq!(s.cache_group_for_slot(&spec, 1), 0);
        assert_eq!(s.cache_group_for_slot(&spec, 2), 1);
        assert_eq!(s.cache_group_for_slot(&spec, 3), 1);
    }

    #[test]
    fn spread_policy_separates_consecutive_vms() {
        let spec = MachineSpec::xeon_x5472();
        let s = Scheduler::production(PlacementPolicy::Spread);
        assert_ne!(
            s.cache_group_for_slot(&spec, 0),
            s.cache_group_for_slot(&spec, 1)
        );
    }

    #[test]
    fn cache_group_is_always_within_range() {
        let spec = MachineSpec::xeon_x5472();
        for policy in [PlacementPolicy::Pack, PlacementPolicy::Spread] {
            let s = Scheduler::production(policy);
            for slot in 0..16 {
                assert!(s.cache_group_for_slot(&spec, slot) < spec.cache_groups());
            }
        }
    }

    #[test]
    fn admission_respects_core_capacity() {
        let spec = MachineSpec::xeon_x5472();
        let s = Scheduler::default();
        let resident: Vec<Vm> = (0..4).map(vm).collect(); // 8 cores used
        assert!(!s.admits(&spec, &resident, &vm(99)));
        let three: Vec<Vm> = (0..3).map(vm).collect(); // 6 cores used
        assert!(s.admits(&spec, &three, &vm(99)));
    }

    #[test]
    fn admission_respects_memory_capacity() {
        let spec = MachineSpec::xeon_x5472();
        let s = Scheduler::default();
        let big = Vm::with_shape(
            VmId(1),
            2,
            7_000.0,
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(1_000.0, 5.0),
        );
        let resident = vec![big];
        assert!(!s.admits(&spec, &resident, &vm(2)));
    }

    #[test]
    fn sandbox_scheduler_admits_only_one_vm() {
        let spec = MachineSpec::xeon_x5472();
        let s = Scheduler::sandbox();
        assert!(s.admits(&spec, &[], &vm(1)));
        let resident = vec![vm(1)];
        assert!(!s.admits(&spec, &resident, &vm(2)));
    }
}
