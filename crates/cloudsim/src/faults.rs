//! Deterministic fault injection: machine crashes, transient migration
//! failures and sandbox-pool outages as pure functions of identity and time.
//!
//! The paper's evaluation (and this reproduction through the service mode)
//! assumes an idealized datacenter: machines never fail, the sandbox is
//! always reachable, migrations always succeed.  A production-scale service
//! cannot — so [`FaultPlane`] makes failure a first-class, *deterministic*
//! event, following the exact discipline [`crate::rngs::ClusterSeed`]
//! established for demand streams: every fault draw is derived by hashing
//! `(fault seed, fault kind, entity id, epoch)` through SplitMix64
//! finalizers, so a fault schedule is a pure function of identity and time —
//! never of thread count, placement history or stepping order.  The same
//! seed produces the same crashes on every platform, in every execution
//! mode, which is what lets the chaos suite (`tests/fault_tolerance.rs`)
//! pin Serial, Sharded and Pooled runs bit-identical *under* injected
//! faults.
//!
//! ## Fault kinds
//!
//! * **Machine crash/repair windows** — [`FaultPlane::machine_down`]
//!   reports whether a machine is inside a crash window at an epoch.
//!   Windows are *stateless*: a crash starts at epoch `s` with probability
//!   [`FaultConfig::machine_crash_per_epoch`], lasts a bounded number of
//!   epochs drawn from [`FaultConfig::repair_epochs`], and overlapping
//!   windows union.  Membership at epoch `t` is decided by scanning the
//!   bounded window of possible start epochs, so no mutable fault state
//!   exists anywhere — the consumer (the service) only tracks edges.
//! * **Transient migration failures** — [`FaultPlane::migration_fails`]
//!   fails an individual migration attempt with probability
//!   [`FaultConfig::migration_failure`]; the controller retries with
//!   epoch-based backoff.
//! * **Sandbox-pool outages** — [`FaultPlane::sandbox_down`] puts a
//!   profiling pool inside an outage interval with the same stateless
//!   window construction; the controller defers analyses with a deadline
//!   and degrades to warning-only operation past it.
//!
//! A plane built with [`FaultPlane::disabled`] (or any all-zero-rate
//! config) never fires: attaching it to a service or controller is
//! guaranteed to change nothing, byte for byte.

use crate::pm::PmId;
use crate::rngs::splitmix64;
use crate::vm::VmId;

/// Domain-separation tags, one per fault stream, XOR-folded into the seed so
/// the streams never alias each other (or the demand streams, which hash a
/// different shape entirely).
const KIND_CRASH_START: u64 = 0x6372_6173_685f_7374;
const KIND_CRASH_LEN: u64 = 0x6372_6173_685f_6c6e;
const KIND_MIGRATION: u64 = 0x6d69_6772_5f66_6c70;
const KIND_OUTAGE_START: u64 = 0x6f75_745f_7374_6172;
const KIND_OUTAGE_LEN: u64 = 0x6f75_745f_6c65_6e67;

/// Rates and window shapes of every fault kind.
///
/// Rates are per-entity per-epoch probabilities in `[0, 1]`; window lengths
/// are inclusive `(min, max)` epoch ranges with `1 <= min <= max`.  The
/// maxima bound the stateless window scans, so keep them modest (tens of
/// epochs, not thousands).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a crash window starts on a given machine in a given
    /// epoch.
    pub machine_crash_per_epoch: f64,
    /// Inclusive range of crash-window lengths, in epochs (time to repair).
    pub repair_epochs: (u64, u64),
    /// Probability any individual migration attempt transiently fails.
    pub migration_failure: f64,
    /// Probability an outage window starts on a given sandbox pool in a
    /// given epoch.
    pub sandbox_outage_per_epoch: f64,
    /// Inclusive range of sandbox-outage lengths, in epochs.
    pub outage_epochs: (u64, u64),
}

impl FaultConfig {
    /// All rates zero: a plane with this config never fires.
    pub const fn disabled() -> Self {
        Self {
            machine_crash_per_epoch: 0.0,
            repair_epochs: (1, 1),
            migration_failure: 0.0,
            sandbox_outage_per_epoch: 0.0,
            outage_epochs: (1, 1),
        }
    }

    /// A modest always-something-happening preset for tests and benches:
    /// occasional crashes repaired within 4–12 epochs, one in twelve
    /// migrations failing transiently, rare double-digit sandbox outages.
    pub const fn light() -> Self {
        Self {
            machine_crash_per_epoch: 0.004,
            repair_epochs: (4, 12),
            migration_failure: 0.08,
            sandbox_outage_per_epoch: 0.002,
            outage_epochs: (8, 24),
        }
    }
}

impl Default for FaultConfig {
    /// Defaults to [`FaultConfig::disabled`]: faults are strictly opt-in.
    fn default() -> Self {
        Self::disabled()
    }
}

/// The deterministic fault schedule: a seed plus a [`FaultConfig`].
///
/// Every query is a pure function of `(seed, fault kind, entity id, epoch)`
/// — the plane holds no mutable state, is `Copy`, and may be queried from
/// any thread in any order without perturbing any outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlane {
    seed: u64,
    config: FaultConfig,
}

impl FaultPlane {
    /// Wraps a fault seed and config.
    ///
    /// # Panics
    /// Panics if a rate is outside `[0, 1]` or a window range is empty or
    /// inverted.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        for (name, rate) in [
            ("machine_crash_per_epoch", config.machine_crash_per_epoch),
            ("migration_failure", config.migration_failure),
            ("sandbox_outage_per_epoch", config.sandbox_outage_per_epoch),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{name} must be a probability in [0, 1], got {rate}"
            );
        }
        for (name, (min, max)) in [
            ("repair_epochs", config.repair_epochs),
            ("outage_epochs", config.outage_epochs),
        ] {
            assert!(
                min >= 1 && min <= max,
                "{name} must satisfy 1 <= min <= max, got ({min}, {max})"
            );
        }
        Self { seed, config }
    }

    /// A plane that never fires (seed irrelevant by construction).
    pub fn disabled() -> Self {
        Self::new(0, FaultConfig::disabled())
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when at least one fault kind has a nonzero rate.  A disabled
    /// plane's consumers may (and the service does) skip their fault sweeps
    /// entirely — the contract that attaching a disabled plane changes
    /// nothing.
    pub fn is_enabled(&self) -> bool {
        self.config.machine_crash_per_epoch > 0.0
            || self.config.migration_failure > 0.0
            || self.config.sandbox_outage_per_epoch > 0.0
    }

    /// The raw 64-bit draw of one `(kind, entity, epoch)` cell — the same
    /// two-layer finalizer shape as [`crate::rngs::ClusterSeed::stream_seed`],
    /// with the kind tag folded into the seed so fault streams never alias
    /// each other across kinds.
    fn draw(&self, kind: u64, entity: u64, epoch: u64) -> u64 {
        splitmix64(splitmix64(self.seed ^ kind ^ splitmix64(entity)) ^ epoch)
    }

    /// Maps a draw onto `[0, 1)` (53 mantissa bits, the standard ldexp
    /// construction).
    fn unit(draw: u64) -> f64 {
        (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw of one cell.
    fn fires(&self, kind: u64, entity: u64, epoch: u64, rate: f64) -> bool {
        rate > 0.0 && Self::unit(self.draw(kind, entity, epoch)) < rate
    }

    /// Window length in `[min, max]` for a window starting at `epoch`.
    fn window_len(&self, kind: u64, entity: u64, epoch: u64, range: (u64, u64)) -> u64 {
        let (min, max) = range;
        min + self.draw(kind, entity, epoch) % (max - min + 1)
    }

    /// Whether a window stream (start-rate + length-range) covers `epoch`:
    /// true when any start in the bounded lookback opens a window still
    /// live at `epoch`.  Overlapping windows union.
    fn in_window(
        &self,
        start_kind: u64,
        len_kind: u64,
        entity: u64,
        epoch: u64,
        rate: f64,
        range: (u64, u64),
    ) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let earliest = epoch.saturating_sub(range.1 - 1);
        (earliest..=epoch).any(|start| {
            self.fires(start_kind, entity, start, rate)
                && start + self.window_len(len_kind, entity, start, range) > epoch
        })
    }

    /// True when a crash window starts on `pm` exactly at `epoch` (the
    /// window itself may extend it; see [`FaultPlane::machine_down`]).
    pub fn crash_starts(&self, pm: PmId, epoch: u64) -> bool {
        self.fires(
            KIND_CRASH_START,
            pm.0,
            epoch,
            self.config.machine_crash_per_epoch,
        )
    }

    /// True when `pm` is inside a crash/repair window at `epoch` — i.e. the
    /// machine is down and cannot host or step VMs.  Pure function of
    /// `(seed, pm, epoch)`; the service detects crash and repair *edges* by
    /// comparing consecutive epochs.
    pub fn machine_down(&self, pm: PmId, epoch: u64) -> bool {
        self.in_window(
            KIND_CRASH_START,
            KIND_CRASH_LEN,
            pm.0,
            epoch,
            self.config.machine_crash_per_epoch,
            self.config.repair_epochs,
        )
    }

    /// True when the migration attempt for `vm` at `epoch` transiently
    /// fails.  One draw per `(vm, epoch)` cell: retrying the same VM in a
    /// later epoch gets a fresh draw, retrying within the same epoch does
    /// not (the failure is a property of the epoch's conditions).
    pub fn migration_fails(&self, vm: VmId, epoch: u64) -> bool {
        self.fires(KIND_MIGRATION, vm.0, epoch, self.config.migration_failure)
    }

    /// True when sandbox pool `pool` (index into the fleet's pool list) is
    /// inside an outage window at `epoch`.
    pub fn sandbox_down(&self, pool: usize, epoch: u64) -> bool {
        self.in_window(
            KIND_OUTAGE_START,
            KIND_OUTAGE_LEN,
            pool as u64,
            epoch,
            self.config.sandbox_outage_per_epoch,
            self.config.outage_epochs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultPlane {
        FaultPlane::new(
            0xFA17,
            FaultConfig {
                machine_crash_per_epoch: 0.05,
                repair_epochs: (2, 6),
                migration_failure: 0.2,
                sandbox_outage_per_epoch: 0.03,
                outage_epochs: (3, 9),
            },
        )
    }

    #[test]
    fn disabled_plane_never_fires() {
        let plane = FaultPlane::disabled();
        assert!(!plane.is_enabled());
        for epoch in 0..512 {
            assert!(!plane.machine_down(PmId(epoch % 7), epoch));
            assert!(!plane.migration_fails(VmId(epoch), epoch));
            assert!(!plane.sandbox_down((epoch % 3) as usize, epoch));
        }
    }

    #[test]
    fn queries_are_pure_and_order_independent() {
        let plane = chaotic();
        let sweep = |order_noise: bool| {
            let mut log = Vec::new();
            for epoch in 0..200u64 {
                if order_noise {
                    // Interleaved foreign queries must not perturb anything.
                    let _ = plane.machine_down(PmId(99), epoch + 7);
                    let _ = plane.migration_fails(VmId(1234), epoch);
                }
                log.push((
                    plane.machine_down(PmId(3), epoch),
                    plane.migration_fails(VmId(17), epoch),
                    plane.sandbox_down(1, epoch),
                ));
            }
            log
        };
        assert_eq!(sweep(false), sweep(true));
    }

    #[test]
    fn crash_windows_last_their_drawn_length() {
        let plane = chaotic();
        let (min_len, max_len) = plane.config().repair_epochs;
        // Every observed down-stretch must be at least `min_len` long unless
        // truncated by epoch 0, and every window must eventually end.
        let mut run = 0u64;
        let mut runs = Vec::new();
        for epoch in 0..4000u64 {
            if plane.machine_down(PmId(5), epoch) {
                run += 1;
            } else if run > 0 {
                runs.push((epoch - run, run));
                run = 0;
            }
        }
        assert!(!runs.is_empty(), "no crash windows in 4000 epochs at 5%");
        for (start, len) in &runs {
            if *start > 0 {
                assert!(
                    *len >= min_len,
                    "window at {start} shorter ({len}) than min {min_len}"
                );
            }
            // Unions of overlapping windows may exceed max_len, but not by
            // more than another full window per overlapping start; sanity
            // bound generously.
            assert!(*len <= 50 * max_len, "implausibly long window: {len}");
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plane = chaotic();
        let epochs = 20_000u64;
        let failures = (0..epochs)
            .filter(|&e| plane.migration_fails(VmId(42), e))
            .count() as f64;
        let rate = failures / epochs as f64;
        assert!(
            (rate - 0.2).abs() < 0.02,
            "migration failure rate {rate} far from configured 0.2"
        );
    }

    #[test]
    fn streams_differ_across_entities_and_kinds() {
        let plane = chaotic();
        let downs: Vec<bool> = (0..300).map(|e| plane.machine_down(PmId(1), e)).collect();
        let other: Vec<bool> = (0..300).map(|e| plane.machine_down(PmId(2), e)).collect();
        assert_ne!(downs, other, "two machines share a crash schedule");
        let outages: Vec<bool> = (0..300).map(|e| plane.sandbox_down(1, e)).collect();
        assert_ne!(downs, outages, "crash and outage streams alias");
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn out_of_range_rates_are_rejected() {
        FaultPlane::new(
            1,
            FaultConfig {
                migration_failure: 1.5,
                ..FaultConfig::disabled()
            },
        );
    }

    #[test]
    #[should_panic(expected = "1 <= min <= max")]
    fn inverted_windows_are_rejected() {
        FaultPlane::new(
            1,
            FaultConfig {
                repair_epochs: (9, 3),
                ..FaultConfig::disabled()
            },
        );
    }
}
