//! Deterministic, topology-aware fault injection: machine crashes, rack and
//! power-domain outages, planned maintenance drains, transient migration
//! failures and sandbox-pool outages — all as pure functions of identity and
//! time.
//!
//! The paper's evaluation (and this reproduction through the service mode)
//! assumes an idealized datacenter: machines never fail, the sandbox is
//! always reachable, migrations always succeed.  A production-scale service
//! cannot — so [`FaultPlane`] makes failure a first-class, *deterministic*
//! event, following the exact discipline [`crate::rngs::ClusterSeed`]
//! established for demand streams: every fault draw is derived by hashing
//! `(fault seed, fault kind, entity id, epoch)` through SplitMix64
//! finalizers, so a fault schedule is a pure function of identity and time —
//! never of thread count, placement history or stepping order.  The same
//! seed produces the same crashes on every platform, in every execution
//! mode, which is what lets the chaos suite (`tests/fault_tolerance.rs`)
//! pin Serial, Sharded and Pooled runs bit-identical *under* injected
//! faults.
//!
//! ## Physical topology
//!
//! Real incidents are correlated: a top-of-rack switch or rack PDU takes a
//! whole rack at once, a power-domain failure takes every rack behind the
//! same feed.  [`Topology`] gives every machine a fixed physical position,
//! derived deterministically from its id alone:
//!
//! ```text
//! rack(pm)   = pm / machines_per_rack
//! domain(pm) = rack(pm) / racks_per_domain
//! ```
//!
//! Because the mapping depends only on the machine id (never on fleet
//! size), growing the fleet appends new racks and domains without moving
//! any existing machine — schedules drawn for the old machines are stable
//! under fleet growth.
//!
//! ## Fault streams and the schedule-derivation formula
//!
//! Every stream draws one 64-bit cell per `(kind, entity, epoch)`:
//!
//! ```text
//! draw(kind, entity, epoch) =
//!     splitmix64(splitmix64(seed ^ kind ^ splitmix64(entity)) ^ epoch)
//! ```
//!
//! where `kind` is a per-stream domain-separation tag and `entity` is a
//! machine, rack, domain, VM or sandbox-pool id depending on the stream.
//! Bernoulli events map the draw onto `[0, 1)` (53 mantissa bits) and
//! compare against the configured rate; window lengths take the draw modulo
//! the inclusive `(min, max)` range.  *Windows are stateless*: membership
//! at epoch `t` is decided by scanning the bounded set of start epochs
//! whose windows could still cover `t`, so overlapping windows union and no
//! mutable fault state exists anywhere — consumers (the service) only
//! track edges.
//!
//! | stream | entity | config knobs (units) |
//! |---|---|---|
//! | machine crash windows | machine id | [`FaultConfig::machine_crash_per_epoch`] (probability/epoch), [`FaultConfig::repair_epochs`] (epochs) |
//! | rack outage windows | rack id | [`FaultConfig::rack_outage_per_epoch`], [`FaultConfig::rack_outage_epochs`] |
//! | power-domain outage windows | domain id | [`FaultConfig::domain_outage_per_epoch`], [`FaultConfig::domain_outage_epochs`] |
//! | maintenance drains | machine id | [`FaultConfig::machine_drain_per_epoch`], [`FaultConfig::drain_notice_epochs`] (epochs of notice), [`FaultConfig::maintenance_epochs`] (offline epochs) |
//! | transient migration failures | VM id | [`FaultConfig::migration_failure`] |
//! | sandbox-pool outages | pool index | [`FaultConfig::sandbox_outage_per_epoch`], [`FaultConfig::outage_epochs`] |
//!
//! [`FaultPlane::machine_down`] is the union of the first three streams
//! plus the *offline* phase of a maintenance drain — one predicate the
//! service consults, whatever the blast radius behind it.
//!
//! ## Crashes vs drains
//!
//! A **crash** is instant: the window opens, the machine is gone, and every
//! resident must be evacuated in the same epoch (or parked).  A
//! **maintenance drain** is planned and graceful: a drain starting at epoch
//! `s` first opens a *notice window* of [`FaultConfig::drain_notice_epochs`]
//! epochs (`[s, s + notice)`) during which the machine keeps running its
//! residents but accepts no new placements and the service migrates
//! residents out a few per epoch ([`FaultPlane::machine_draining`],
//! [`FaultPlane::drain_remaining`]); only then does the machine go offline
//! for a `maintenance_epochs`-drawn window (`[s + notice, s + notice +
//! len)`, reported by both [`FaultPlane::in_maintenance`] and
//! [`FaultPlane::machine_down`]).  Any resident still on the machine when
//! the notice expires is evacuated instantly, like a crash.  A machine that
//! is down never reports as draining — outage takes precedence.
//!
//! ## Building a correlated schedule
//!
//! Rack outages produce *correlated* crashes: every machine in the rack is
//! down for exactly the same window.
//!
//! ```
//! use cloudsim::faults::{FaultConfig, FaultPlane, Topology};
//! use cloudsim::pm::PmId;
//!
//! // 4 machines per rack, 2 racks per power domain.
//! let config = FaultConfig {
//!     topology: Topology::new(4, 2),
//!     rack_outage_per_epoch: 0.01,
//!     rack_outage_epochs: (4, 8),
//!     ..FaultConfig::disabled()
//! };
//! let plane = FaultPlane::new(7, config);
//!
//! // Machines 0..4 share rack 0: they are always down together.
//! let mut saw_outage = false;
//! for epoch in 0..2_000 {
//!     let rack0_down = plane.machine_down(PmId(0), epoch);
//!     saw_outage |= rack0_down;
//!     for m in 1..4 {
//!         assert_eq!(plane.machine_down(PmId(m), epoch), rack0_down);
//!     }
//!     // Machine 4 is in rack 1: its schedule is independent.
//!     assert_eq!(plane.config().topology.rack_of(PmId(4)), 1);
//! }
//! assert!(saw_outage, "1% outage rate must fire within 2000 epochs");
//! ```
//!
//! A plane built with [`FaultPlane::disabled`] (or any all-zero-rate
//! config) never fires: attaching it to a service or controller is
//! guaranteed to change nothing, byte for byte.

use crate::pm::PmId;
use crate::rngs::splitmix64;
use crate::vm::VmId;

/// Domain-separation tags, one per fault stream, XOR-folded into the seed so
/// the streams never alias each other (or the demand streams, which hash a
/// different shape entirely).
const KIND_CRASH_START: u64 = 0x6372_6173_685f_7374;
const KIND_CRASH_LEN: u64 = 0x6372_6173_685f_6c6e;
const KIND_MIGRATION: u64 = 0x6d69_6772_5f66_6c70;
const KIND_OUTAGE_START: u64 = 0x6f75_745f_7374_6172;
const KIND_OUTAGE_LEN: u64 = 0x6f75_745f_6c65_6e67;
const KIND_RACK_START: u64 = 0x7261_636b_5f73_7461;
const KIND_RACK_LEN: u64 = 0x7261_636b_5f6c_656e;
const KIND_DOMAIN_START: u64 = 0x646f_6d5f_7374_6172;
const KIND_DOMAIN_LEN: u64 = 0x646f_6d5f_6c65_6e67;
const KIND_DRAIN_START: u64 = 0x6472_6169_6e5f_7374;
const KIND_MAINT_LEN: u64 = 0x6d61_696e_745f_6c6e;

/// The fleet's physical layout: machines pack into racks, racks into power
/// domains, both derived from the machine id alone.
///
/// * `rack(pm) = pm / machines_per_rack`
/// * `domain(pm) = rack(pm) / racks_per_domain`
///
/// The mapping never depends on fleet size, so a machine's rack and domain
/// are stable under fleet growth: new machines append new racks/domains
/// without relocating anyone (pinned by unit test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Machines per rack (≥ 1).  `1` degenerates every rack to a single
    /// machine, making rack outages equivalent to independent crashes.
    pub machines_per_rack: usize,
    /// Racks per power domain (≥ 1).
    pub racks_per_domain: usize,
}

impl Topology {
    /// A conventional layout: 40 machines per rack, 8 racks per power
    /// domain (320 machines behind one feed).
    pub const fn conventional() -> Self {
        Self {
            machines_per_rack: 40,
            racks_per_domain: 8,
        }
    }

    /// Builds a topology.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub const fn new(machines_per_rack: usize, racks_per_domain: usize) -> Self {
        assert!(machines_per_rack >= 1, "machines_per_rack must be >= 1");
        assert!(racks_per_domain >= 1, "racks_per_domain must be >= 1");
        Self {
            machines_per_rack,
            racks_per_domain,
        }
    }

    /// The rack holding `pm`.
    pub fn rack_of(&self, pm: PmId) -> u64 {
        pm.0 / self.machines_per_rack as u64
    }

    /// The power domain holding `pm`.
    pub fn domain_of(&self, pm: PmId) -> u64 {
        self.rack_of(pm) / self.racks_per_domain as u64
    }

    /// Machines sharing one power domain (the domain-level blast radius).
    pub fn machines_per_domain(&self) -> usize {
        self.machines_per_rack * self.racks_per_domain
    }

    /// Number of distinct power domains covering a fleet of `machines`
    /// machines with dense ids `0..machines` (zero for an empty fleet).
    pub fn domains_in_fleet(&self, machines: usize) -> usize {
        machines.div_ceil(self.machines_per_domain())
    }
}

impl Default for Topology {
    /// Defaults to [`Topology::conventional`].
    fn default() -> Self {
        Self::conventional()
    }
}

/// Rates and window shapes of every fault kind.
///
/// Rates are per-entity per-epoch probabilities in `[0, 1]`; window lengths
/// are inclusive `(min, max)` epoch ranges with `1 <= min <= max`.  The
/// maxima bound the stateless window scans, so keep them modest (tens of
/// epochs, not thousands).  Defaults ([`FaultConfig::disabled`]) are all
/// zero rates — faults are strictly opt-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Physical layout driving the rack/domain streams (and available to
    /// consumers for spread-aware placement).
    pub topology: Topology,
    /// Probability a crash window starts on a given machine in a given
    /// epoch.  Default 0.
    pub machine_crash_per_epoch: f64,
    /// Inclusive range of crash-window lengths, in epochs (time to repair).
    /// Default `(1, 1)`.
    pub repair_epochs: (u64, u64),
    /// Probability a whole-rack outage window starts on a given rack in a
    /// given epoch.  Every machine in the rack is down for the window.
    /// Default 0.
    pub rack_outage_per_epoch: f64,
    /// Inclusive range of rack-outage lengths, in epochs.  Default `(1, 1)`.
    pub rack_outage_epochs: (u64, u64),
    /// Probability a whole-power-domain outage window starts on a given
    /// domain in a given epoch.  Default 0.
    pub domain_outage_per_epoch: f64,
    /// Inclusive range of domain-outage lengths, in epochs.
    /// Default `(1, 1)`.
    pub domain_outage_epochs: (u64, u64),
    /// Probability a planned maintenance drain starts on a given machine in
    /// a given epoch.  Default 0.
    pub machine_drain_per_epoch: f64,
    /// Epochs of advance notice a drain gives before the machine goes
    /// offline (≥ 1): the window in which the service migrates residents
    /// out gracefully.  Default 1.
    pub drain_notice_epochs: u64,
    /// Inclusive range of the offline window that follows a drain's notice
    /// period, in epochs.  Default `(1, 1)`.
    pub maintenance_epochs: (u64, u64),
    /// Probability any individual migration attempt transiently fails.
    /// Default 0.
    pub migration_failure: f64,
    /// Probability an outage window starts on a given sandbox pool in a
    /// given epoch.  Default 0.
    pub sandbox_outage_per_epoch: f64,
    /// Inclusive range of sandbox-outage lengths, in epochs.
    /// Default `(1, 1)`.
    pub outage_epochs: (u64, u64),
}

impl FaultConfig {
    /// All rates zero: a plane with this config never fires.
    pub const fn disabled() -> Self {
        Self {
            topology: Topology::conventional(),
            machine_crash_per_epoch: 0.0,
            repair_epochs: (1, 1),
            rack_outage_per_epoch: 0.0,
            rack_outage_epochs: (1, 1),
            domain_outage_per_epoch: 0.0,
            domain_outage_epochs: (1, 1),
            machine_drain_per_epoch: 0.0,
            drain_notice_epochs: 1,
            maintenance_epochs: (1, 1),
            migration_failure: 0.0,
            sandbox_outage_per_epoch: 0.0,
            outage_epochs: (1, 1),
        }
    }

    /// A modest always-something-happening preset for tests and benches:
    /// occasional independent crashes repaired within 4–12 epochs, one in
    /// twelve migrations failing transiently, rare double-digit sandbox
    /// outages.  Blast radius 1 — the uncorrelated baseline the correlated
    /// presets below are compared against.
    pub const fn light() -> Self {
        Self {
            machine_crash_per_epoch: 0.004,
            repair_epochs: (4, 12),
            migration_failure: 0.08,
            sandbox_outage_per_epoch: 0.002,
            outage_epochs: (8, 24),
            ..Self::disabled()
        }
    }

    /// Rack-correlated outages with the same expected machine downtime as
    /// [`FaultConfig::light`] (same start rate and window lengths, applied
    /// per rack instead of per machine), so availability matches while the
    /// blast radius grows to `topology.machines_per_rack` machines at once.
    pub const fn rack_outages(topology: Topology) -> Self {
        Self {
            topology,
            rack_outage_per_epoch: 0.004,
            rack_outage_epochs: (4, 12),
            migration_failure: 0.08,
            sandbox_outage_per_epoch: 0.002,
            outage_epochs: (8, 24),
            ..Self::disabled()
        }
    }

    /// Power-domain-correlated outages: same expected machine downtime as
    /// [`FaultConfig::light`], blast radius
    /// `topology.machines_per_domain()` machines at once.
    pub const fn domain_outages(topology: Topology) -> Self {
        Self {
            topology,
            domain_outage_per_epoch: 0.004,
            domain_outage_epochs: (4, 12),
            migration_failure: 0.08,
            sandbox_outage_per_epoch: 0.002,
            outage_epochs: (8, 24),
            ..Self::disabled()
        }
    }

    /// Planned maintenance at the same start rate and offline windows as
    /// [`FaultConfig::light`]'s crashes, but with an 8-epoch drain notice:
    /// the graceful counterpart to `light`, isolating what advance warning
    /// buys (lower disruption at equal machine downtime).
    pub const fn maintenance() -> Self {
        Self {
            machine_drain_per_epoch: 0.004,
            drain_notice_epochs: 8,
            maintenance_epochs: (4, 12),
            migration_failure: 0.08,
            sandbox_outage_per_epoch: 0.002,
            outage_epochs: (8, 24),
            ..Self::disabled()
        }
    }
}

impl Default for FaultConfig {
    /// Defaults to [`FaultConfig::disabled`]: faults are strictly opt-in.
    fn default() -> Self {
        Self::disabled()
    }
}

/// The deterministic fault schedule: a seed plus a [`FaultConfig`].
///
/// Every query is a pure function of `(seed, fault kind, entity id, epoch)`
/// — the plane holds no mutable state, is `Copy`, and may be queried from
/// any thread in any order without perturbing any outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlane {
    seed: u64,
    config: FaultConfig,
}

impl FaultPlane {
    /// Wraps a fault seed and config.
    ///
    /// # Panics
    /// Panics if a rate is outside `[0, 1]`, a window range is empty or
    /// inverted, the drain notice is zero, or the topology has a zero
    /// dimension.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        for (name, rate) in [
            ("machine_crash_per_epoch", config.machine_crash_per_epoch),
            ("rack_outage_per_epoch", config.rack_outage_per_epoch),
            ("domain_outage_per_epoch", config.domain_outage_per_epoch),
            ("machine_drain_per_epoch", config.machine_drain_per_epoch),
            ("migration_failure", config.migration_failure),
            ("sandbox_outage_per_epoch", config.sandbox_outage_per_epoch),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{name} must be a probability in [0, 1], got {rate}"
            );
        }
        for (name, (min, max)) in [
            ("repair_epochs", config.repair_epochs),
            ("rack_outage_epochs", config.rack_outage_epochs),
            ("domain_outage_epochs", config.domain_outage_epochs),
            ("maintenance_epochs", config.maintenance_epochs),
            ("outage_epochs", config.outage_epochs),
        ] {
            assert!(
                min >= 1 && min <= max,
                "{name} must satisfy 1 <= min <= max, got ({min}, {max})"
            );
        }
        assert!(
            config.drain_notice_epochs >= 1,
            "drain_notice_epochs must be >= 1, got {}",
            config.drain_notice_epochs
        );
        assert!(
            config.topology.machines_per_rack >= 1 && config.topology.racks_per_domain >= 1,
            "topology dimensions must be >= 1, got {:?}",
            config.topology
        );
        Self { seed, config }
    }

    /// A plane that never fires (seed irrelevant by construction).
    pub fn disabled() -> Self {
        Self::new(0, FaultConfig::disabled())
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The physical layout driving the correlated streams.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// True when at least one fault kind has a nonzero rate.  A disabled
    /// plane's consumers may (and the service does) skip their fault sweeps
    /// entirely — the contract that attaching a disabled plane changes
    /// nothing.
    pub fn is_enabled(&self) -> bool {
        self.config.machine_crash_per_epoch > 0.0
            || self.config.rack_outage_per_epoch > 0.0
            || self.config.domain_outage_per_epoch > 0.0
            || self.config.machine_drain_per_epoch > 0.0
            || self.config.migration_failure > 0.0
            || self.config.sandbox_outage_per_epoch > 0.0
    }

    /// The raw 64-bit draw of one `(kind, entity, epoch)` cell — the same
    /// two-layer finalizer shape as [`crate::rngs::ClusterSeed::stream_seed`],
    /// with the kind tag folded into the seed so fault streams never alias
    /// each other across kinds.
    fn draw(&self, kind: u64, entity: u64, epoch: u64) -> u64 {
        splitmix64(splitmix64(self.seed ^ kind ^ splitmix64(entity)) ^ epoch)
    }

    /// Maps a draw onto `[0, 1)` (53 mantissa bits, the standard ldexp
    /// construction).
    fn unit(draw: u64) -> f64 {
        (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw of one cell.
    fn fires(&self, kind: u64, entity: u64, epoch: u64, rate: f64) -> bool {
        rate > 0.0 && Self::unit(self.draw(kind, entity, epoch)) < rate
    }

    /// Window length in `[min, max]` for a window starting at `epoch`.
    fn window_len(&self, kind: u64, entity: u64, epoch: u64, range: (u64, u64)) -> u64 {
        let (min, max) = range;
        min + self.draw(kind, entity, epoch) % (max - min + 1)
    }

    /// Whether a window stream (start-rate + length-range) covers `epoch`:
    /// true when any start in the bounded lookback opens a window still
    /// live at `epoch`.  Overlapping windows union.
    fn in_window(
        &self,
        start_kind: u64,
        len_kind: u64,
        entity: u64,
        epoch: u64,
        rate: f64,
        range: (u64, u64),
    ) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let earliest = epoch.saturating_sub(range.1 - 1);
        (earliest..=epoch).any(|start| {
            self.fires(start_kind, entity, start, rate)
                && start + self.window_len(len_kind, entity, start, range) > epoch
        })
    }

    /// True when a crash window starts on `pm` exactly at `epoch` (the
    /// window itself may extend it; see [`FaultPlane::machine_down`]).
    pub fn crash_starts(&self, pm: PmId, epoch: u64) -> bool {
        self.fires(
            KIND_CRASH_START,
            pm.0,
            epoch,
            self.config.machine_crash_per_epoch,
        )
    }

    /// True when rack `rack` is inside a whole-rack outage window at
    /// `epoch`.  Every machine in the rack reports
    /// [`FaultPlane::machine_down`] for the full window.
    pub fn rack_down(&self, rack: u64, epoch: u64) -> bool {
        self.in_window(
            KIND_RACK_START,
            KIND_RACK_LEN,
            rack,
            epoch,
            self.config.rack_outage_per_epoch,
            self.config.rack_outage_epochs,
        )
    }

    /// True when power domain `domain` is inside an outage window at
    /// `epoch`.
    pub fn domain_down(&self, domain: u64, epoch: u64) -> bool {
        self.in_window(
            KIND_DOMAIN_START,
            KIND_DOMAIN_LEN,
            domain,
            epoch,
            self.config.domain_outage_per_epoch,
            self.config.domain_outage_epochs,
        )
    }

    /// True when `pm` is inside the *offline* phase of a maintenance drain
    /// at `epoch` — the window following the drain notice.  Offline lengths
    /// are drawn from [`FaultConfig::maintenance_epochs`] per drain start.
    pub fn in_maintenance(&self, pm: PmId, epoch: u64) -> bool {
        let rate = self.config.machine_drain_per_epoch;
        if rate <= 0.0 {
            return false;
        }
        let notice = self.config.drain_notice_epochs;
        let (_, max_len) = self.config.maintenance_epochs;
        // A drain starting at `s` is offline over [s+notice, s+notice+len).
        let earliest = epoch.saturating_sub(notice + max_len - 1);
        let latest = epoch.saturating_sub(notice);
        if epoch < notice {
            return false;
        }
        (earliest..=latest).any(|start| {
            self.fires(KIND_DRAIN_START, pm.0, start, rate)
                && start
                    + notice
                    + self.window_len(KIND_MAINT_LEN, pm.0, start, self.config.maintenance_epochs)
                    > epoch
        })
    }

    /// True when `pm` is inside the *notice* phase of a maintenance drain
    /// at `epoch`: the machine still runs its residents, but the service
    /// should be migrating them out and placing nothing new on it.  A
    /// machine that is down never reports as draining (outage wins).
    pub fn machine_draining(&self, pm: PmId, epoch: u64) -> bool {
        self.drain_remaining(pm, epoch) > 0 && !self.machine_down(pm, epoch)
    }

    /// Epochs left in `pm`'s drain notice window at `epoch` (including the
    /// current one): `1` means the machine goes offline next epoch, `0`
    /// means no drain notice covers `epoch`.  With overlapping drains the
    /// latest deadline wins.
    pub fn drain_remaining(&self, pm: PmId, epoch: u64) -> u64 {
        let rate = self.config.machine_drain_per_epoch;
        if rate <= 0.0 {
            return 0;
        }
        let notice = self.config.drain_notice_epochs;
        let earliest = epoch.saturating_sub(notice - 1);
        (earliest..=epoch)
            .filter(|&start| self.fires(KIND_DRAIN_START, pm.0, start, rate))
            .map(|start| start + notice - epoch)
            .max()
            .unwrap_or(0)
    }

    /// True when `pm` is down at `epoch` and cannot host or step VMs: the
    /// union of its own crash windows, its rack's outage windows, its power
    /// domain's outage windows, and the offline phase of any maintenance
    /// drain.  Pure function of `(seed, pm, epoch)`; the service detects
    /// down/up *edges* by comparing consecutive epochs.
    pub fn machine_down(&self, pm: PmId, epoch: u64) -> bool {
        self.in_window(
            KIND_CRASH_START,
            KIND_CRASH_LEN,
            pm.0,
            epoch,
            self.config.machine_crash_per_epoch,
            self.config.repair_epochs,
        ) || self.rack_down(self.config.topology.rack_of(pm), epoch)
            || self.domain_down(self.config.topology.domain_of(pm), epoch)
            || self.in_maintenance(pm, epoch)
    }

    /// True when the migration attempt for `vm` at `epoch` transiently
    /// fails.  One draw per `(vm, epoch)` cell: retrying the same VM in a
    /// later epoch gets a fresh draw, retrying within the same epoch does
    /// not (the failure is a property of the epoch's conditions).
    pub fn migration_fails(&self, vm: VmId, epoch: u64) -> bool {
        self.fires(KIND_MIGRATION, vm.0, epoch, self.config.migration_failure)
    }

    /// True when sandbox pool `pool` (index into the fleet's pool list) is
    /// inside an outage window at `epoch`.
    pub fn sandbox_down(&self, pool: usize, epoch: u64) -> bool {
        self.in_window(
            KIND_OUTAGE_START,
            KIND_OUTAGE_LEN,
            pool as u64,
            epoch,
            self.config.sandbox_outage_per_epoch,
            self.config.outage_epochs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultPlane {
        FaultPlane::new(
            0xFA17,
            FaultConfig {
                machine_crash_per_epoch: 0.05,
                repair_epochs: (2, 6),
                migration_failure: 0.2,
                sandbox_outage_per_epoch: 0.03,
                outage_epochs: (3, 9),
                ..FaultConfig::disabled()
            },
        )
    }

    fn correlated() -> FaultPlane {
        FaultPlane::new(
            0xFA17,
            FaultConfig {
                topology: Topology::new(4, 2),
                rack_outage_per_epoch: 0.02,
                rack_outage_epochs: (2, 5),
                domain_outage_per_epoch: 0.01,
                domain_outage_epochs: (2, 4),
                machine_drain_per_epoch: 0.02,
                drain_notice_epochs: 3,
                maintenance_epochs: (2, 5),
                ..FaultConfig::disabled()
            },
        )
    }

    #[test]
    fn disabled_plane_never_fires() {
        let plane = FaultPlane::disabled();
        assert!(!plane.is_enabled());
        for epoch in 0..512 {
            assert!(!plane.machine_down(PmId(epoch % 7), epoch));
            assert!(!plane.machine_draining(PmId(epoch % 7), epoch));
            assert!(!plane.migration_fails(VmId(epoch), epoch));
            assert!(!plane.sandbox_down((epoch % 3) as usize, epoch));
        }
    }

    #[test]
    fn queries_are_pure_and_order_independent() {
        let plane = chaotic();
        let sweep = |order_noise: bool| {
            let mut log = Vec::new();
            for epoch in 0..200u64 {
                if order_noise {
                    // Interleaved foreign queries must not perturb anything.
                    let _ = plane.machine_down(PmId(99), epoch + 7);
                    let _ = plane.migration_fails(VmId(1234), epoch);
                }
                log.push((
                    plane.machine_down(PmId(3), epoch),
                    plane.migration_fails(VmId(17), epoch),
                    plane.sandbox_down(1, epoch),
                ));
            }
            log
        };
        assert_eq!(sweep(false), sweep(true));
    }

    #[test]
    fn crash_windows_last_their_drawn_length() {
        let plane = chaotic();
        let (min_len, max_len) = plane.config().repair_epochs;
        // Every observed down-stretch must be at least `min_len` long unless
        // truncated by epoch 0, and every window must eventually end.
        let mut run = 0u64;
        let mut runs = Vec::new();
        for epoch in 0..4000u64 {
            if plane.machine_down(PmId(5), epoch) {
                run += 1;
            } else if run > 0 {
                runs.push((epoch - run, run));
                run = 0;
            }
        }
        assert!(!runs.is_empty(), "no crash windows in 4000 epochs at 5%");
        for (start, len) in &runs {
            if *start > 0 {
                assert!(
                    *len >= min_len,
                    "window at {start} shorter ({len}) than min {min_len}"
                );
            }
            // Unions of overlapping windows may exceed max_len, but not by
            // more than another full window per overlapping start; sanity
            // bound generously.
            assert!(*len <= 50 * max_len, "implausibly long window: {len}");
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plane = chaotic();
        let epochs = 20_000u64;
        let failures = (0..epochs)
            .filter(|&e| plane.migration_fails(VmId(42), e))
            .count() as f64;
        let rate = failures / epochs as f64;
        assert!(
            (rate - 0.2).abs() < 0.02,
            "migration failure rate {rate} far from configured 0.2"
        );
    }

    #[test]
    fn streams_differ_across_entities_and_kinds() {
        let plane = chaotic();
        let downs: Vec<bool> = (0..300).map(|e| plane.machine_down(PmId(1), e)).collect();
        let other: Vec<bool> = (0..300).map(|e| plane.machine_down(PmId(2), e)).collect();
        assert_ne!(downs, other, "two machines share a crash schedule");
        let outages: Vec<bool> = (0..300).map(|e| plane.sandbox_down(1, e)).collect();
        assert_ne!(downs, outages, "crash and outage streams alias");
    }

    #[test]
    fn topology_derivation_is_stable_under_fleet_growth() {
        let topo = Topology::new(4, 2);
        // Pin the mapping exactly: it is id-arithmetic, so growing the
        // fleet can never relocate an existing machine.
        let expect: [(u64, u64, u64); 6] = [
            (0, 0, 0),
            (3, 0, 0),
            (4, 1, 0),
            (7, 1, 0),
            (8, 2, 1),
            (31, 7, 3),
        ];
        for (pm, rack, domain) in expect {
            assert_eq!(topo.rack_of(PmId(pm)), rack, "rack of pm {pm}");
            assert_eq!(topo.domain_of(PmId(pm)), domain, "domain of pm {pm}");
        }
        // A 100× larger fleet maps the same ids identically (growth appends
        // new racks/domains; it never renumbers old machines).
        for pm in 0..64u64 {
            let (r, d) = (topo.rack_of(PmId(pm)), topo.domain_of(PmId(pm)));
            assert_eq!(r, pm / 4);
            assert_eq!(d, pm / 8);
            assert!(d <= r, "domains coarsen racks");
        }
        assert_eq!(topo.machines_per_domain(), 8);
        assert_eq!(topo.domains_in_fleet(0), 0);
        assert_eq!(topo.domains_in_fleet(8), 1);
        assert_eq!(topo.domains_in_fleet(9), 2);
        assert_eq!(topo.domains_in_fleet(64), 8);
    }

    #[test]
    fn rack_outages_fell_the_whole_rack_together() {
        let plane = correlated();
        let topo = plane.config().topology;
        // Crash/drain streams are machine-keyed, so compare rack membership
        // through rack_down directly *and* through machine_down with the
        // machine-level streams disabled.
        let rack_only = FaultPlane::new(
            0xFA17,
            FaultConfig {
                topology: topo,
                rack_outage_per_epoch: plane.config().rack_outage_per_epoch,
                rack_outage_epochs: plane.config().rack_outage_epochs,
                ..FaultConfig::disabled()
            },
        );
        let mut saw_down = false;
        for epoch in 0..2_000u64 {
            for rack in 0..3u64 {
                let rack_state = rack_only.rack_down(rack, epoch);
                saw_down |= rack_state;
                for slot in 0..topo.machines_per_rack as u64 {
                    let pm = PmId(rack * topo.machines_per_rack as u64 + slot);
                    assert_eq!(
                        rack_only.machine_down(pm, epoch),
                        rack_state,
                        "machine {pm} disagrees with its rack {rack} at {epoch}"
                    );
                }
            }
        }
        assert!(saw_down, "2% rack outages must fire in 2000 epochs");
    }

    #[test]
    fn domain_outages_fell_every_rack_behind_the_feed() {
        let topo = Topology::new(2, 3);
        let plane = FaultPlane::new(
            99,
            FaultConfig {
                topology: topo,
                domain_outage_per_epoch: 0.02,
                domain_outage_epochs: (2, 4),
                ..FaultConfig::disabled()
            },
        );
        let mut saw_down = false;
        for epoch in 0..2_000u64 {
            let domain_state = plane.domain_down(0, epoch);
            saw_down |= domain_state;
            for pm in 0..topo.machines_per_domain() as u64 {
                assert_eq!(plane.machine_down(PmId(pm), epoch), domain_state);
            }
        }
        assert!(saw_down, "domain outages must fire in 2000 epochs");
    }

    #[test]
    fn drains_give_notice_then_go_offline() {
        let plane = correlated();
        let notice = plane.config().drain_notice_epochs;
        let (min_off, _) = plane.config().maintenance_epochs;
        let mut saw_drain = false;
        for pm in 0..16u64 {
            let pm = PmId(pm);
            for start in 1..1_500u64 {
                if !plane.fires(KIND_DRAIN_START, pm.0, start, 0.02) {
                    continue;
                }
                saw_drain = true;
                // Notice phase: draining (unless an unrelated outage covers
                // the epoch) with a countdown reaching 1 just before
                // offline.
                assert!(plane.drain_remaining(pm, start) >= notice);
                // ≥ 1 (not == 1): an overlapping later drain extends the
                // deadline.
                assert!(
                    plane.drain_remaining(pm, start + notice - 1) >= 1,
                    "countdown must still cover the last notice epoch"
                );
                // Offline phase: down for at least the minimum window.
                for off in 0..min_off {
                    assert!(
                        plane.in_maintenance(pm, start + notice + off),
                        "{pm} not offline {off} epochs into maintenance"
                    );
                    assert!(plane.machine_down(pm, start + notice + off));
                    assert!(
                        !plane.machine_draining(pm, start + notice + off),
                        "down machines must not report draining"
                    );
                }
            }
        }
        assert!(saw_drain, "2% drains must fire across 16 machines");
    }

    #[test]
    fn drain_notice_is_never_down_without_another_fault() {
        // Drains alone: the notice phase must leave the machine up.
        let plane = FaultPlane::new(
            5,
            FaultConfig {
                machine_drain_per_epoch: 0.03,
                drain_notice_epochs: 4,
                maintenance_epochs: (3, 6),
                ..FaultConfig::disabled()
            },
        );
        let mut draining_epochs = 0u64;
        for epoch in 0..3_000u64 {
            if plane.machine_draining(PmId(2), epoch) {
                draining_epochs += 1;
                assert!(!plane.machine_down(PmId(2), epoch));
            }
        }
        assert!(draining_epochs > 0, "no drain notice observed");
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn out_of_range_rates_are_rejected() {
        FaultPlane::new(
            1,
            FaultConfig {
                migration_failure: 1.5,
                ..FaultConfig::disabled()
            },
        );
    }

    #[test]
    #[should_panic(expected = "1 <= min <= max")]
    fn inverted_windows_are_rejected() {
        FaultPlane::new(
            1,
            FaultConfig {
                repair_epochs: (9, 3),
                ..FaultConfig::disabled()
            },
        );
    }

    #[test]
    #[should_panic(expected = "drain_notice_epochs")]
    fn zero_drain_notice_is_rejected() {
        FaultPlane::new(
            1,
            FaultConfig {
                drain_notice_epochs: 0,
                ..FaultConfig::disabled()
            },
        );
    }

    #[test]
    #[should_panic(expected = "machines_per_rack")]
    fn zero_topology_dimensions_are_rejected() {
        Topology::new(0, 4);
    }
}
