//! Live-migration cost model.
//!
//! The placement manager's whole purpose is to avoid "numerous and expensive
//! VM migrations (especially for applications with large memory and/or
//! persistent state), as well as prolonged periods of severe performance
//! degradation" (§4.3).  To make that trade-off visible in the benches, this
//! module estimates what a migration costs: how long the pre-copy takes, how
//! long the VM is paused, and how much network traffic the transfer adds.

use serde::{Deserialize, Serialize};

/// Pre-copy rounds performed before the stop-and-copy phase.
const PRECOPY_ROUNDS: u32 = 3;

/// Estimated cost of live-migrating one VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Total migration duration (pre-copy + stop-and-copy), in seconds.
    pub total_seconds: f64,
    /// Downtime during the final stop-and-copy phase, in seconds.
    pub downtime_seconds: f64,
    /// Bytes moved over the network, in MiB.
    pub transferred_mb: f64,
}

/// Estimates the cost of live-migrating a VM.
///
/// * `memory_mb` — the VM's memory allocation.
/// * `dirty_rate_mb_per_s` — how fast the workload dirties memory.
/// * `bandwidth_mb_per_s` — migration bandwidth between source and target.
///
/// A standard pre-copy model: the full memory image is sent once, then each
/// round retransmits the pages dirtied during the previous round, and the
/// remainder is sent during the stop-and-copy pause.
///
/// # Panics
/// Panics if memory or bandwidth is not positive, if the dirty rate is
/// negative, or if the dirty rate is at least the migration bandwidth (the
/// pre-copy would never converge).
pub fn estimate_migration(
    memory_mb: f64,
    dirty_rate_mb_per_s: f64,
    bandwidth_mb_per_s: f64,
) -> MigrationCost {
    assert!(memory_mb > 0.0, "memory must be positive");
    assert!(bandwidth_mb_per_s > 0.0, "bandwidth must be positive");
    assert!(dirty_rate_mb_per_s >= 0.0, "dirty rate cannot be negative");
    assert!(
        dirty_rate_mb_per_s < bandwidth_mb_per_s,
        "pre-copy cannot converge when the dirty rate ({dirty_rate_mb_per_s} MiB/s) \
         reaches the migration bandwidth ({bandwidth_mb_per_s} MiB/s)"
    );

    let mut transferred = 0.0;
    let mut to_send = memory_mb;
    let mut total_seconds = 0.0;
    for _ in 0..PRECOPY_ROUNDS {
        let round_seconds = to_send / bandwidth_mb_per_s;
        transferred += to_send;
        total_seconds += round_seconds;
        to_send = dirty_rate_mb_per_s * round_seconds;
    }
    // Stop-and-copy: pause the VM and send whatever is still dirty.
    let downtime_seconds = to_send / bandwidth_mb_per_s;
    transferred += to_send;
    total_seconds += downtime_seconds;

    MigrationCost {
        total_seconds,
        downtime_seconds,
        transferred_mb: transferred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_vm_migrates_in_one_memory_copy() {
        let cost = estimate_migration(2_048.0, 0.0, 100.0);
        assert!((cost.transferred_mb - 2_048.0).abs() < 1e-9);
        assert!((cost.total_seconds - 20.48).abs() < 1e-9);
        assert_eq!(cost.downtime_seconds, 0.0);
    }

    #[test]
    fn dirtier_vms_cost_more() {
        let calm = estimate_migration(2_048.0, 5.0, 100.0);
        let busy = estimate_migration(2_048.0, 50.0, 100.0);
        assert!(busy.total_seconds > calm.total_seconds);
        assert!(busy.downtime_seconds > calm.downtime_seconds);
        assert!(busy.transferred_mb > calm.transferred_mb);
    }

    #[test]
    fn bigger_memory_costs_more() {
        let small = estimate_migration(1_024.0, 10.0, 100.0);
        let large = estimate_migration(8_192.0, 10.0, 100.0);
        assert!(large.total_seconds > 4.0 * small.total_seconds);
    }

    #[test]
    fn faster_link_reduces_downtime() {
        let slow = estimate_migration(2_048.0, 20.0, 50.0);
        let fast = estimate_migration(2_048.0, 20.0, 500.0);
        assert!(fast.downtime_seconds < slow.downtime_seconds);
        assert!(fast.total_seconds < slow.total_seconds);
    }

    #[test]
    #[should_panic(expected = "cannot converge")]
    fn non_converging_precopy_is_rejected() {
        estimate_migration(2_048.0, 100.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "memory must be positive")]
    fn zero_memory_rejected() {
        estimate_migration(0.0, 1.0, 100.0);
    }
}
