//! Smoke tests: every figure/table entry point in `bench::figures` runs under
//! plain `cargo test`, not only under Criterion.
//!
//! These are deliberately shallow — the *qualitative* claims behind each
//! figure are asserted by `tests/paper_claims.rs` at the workspace root; here
//! we pin that each experiment executes, terminates, and produces well-formed
//! (finite, right-sized) data, so a regression in any experiment path is
//! caught even when no bench is run.

use bench::{
    fig10_synthetic_accuracy, fig11_placement_robustness, fig12_profiling_overhead,
    fig1_ec2_motivation, fig4_metric_clusters, fig5_global_information, fig6_cpi_breakdown,
    fig7_i7_port, fig8_detection, fig9_degradation_accuracy, memory_overhead_bytes_per_vm_day,
    CloudWorkload, Fig6Scenario,
};
use deepdive::synthetic::SyntheticBenchmark;
use hwsim::MachineSpec;
use queueing::scenarios::{paper_fractions, reaction_time_curve, ScenarioConfig};

fn trained() -> SyntheticBenchmark {
    SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 120, 7)
}

#[test]
fn fig1_produces_72_hours_of_finite_series() {
    let points = fig1_ec2_motivation(1);
    assert_eq!(points.len(), 72, "three days of hourly points");
    assert!(points
        .iter()
        .all(|p| p.throughput_rps.is_finite() && p.latency_ms.is_finite()));
    assert!(points.iter().any(|p| p.interference_active));
    assert!(points.iter().any(|p| !p.interference_active));
}

#[test]
fn fig4_clusters_have_points_from_both_classes() {
    let clusters = fig4_metric_clusters(CloudWorkload::DataServing, 4);
    assert!(clusters.points.iter().any(|p| p.interference));
    assert!(clusters.points.iter().any(|p| !p.interference));
    assert!(clusters.separation_score.is_finite());
    assert!(clusters
        .points
        .iter()
        .all(|p| p.coords.iter().all(|c| c.is_finite())));
}

#[test]
fn fig5_reports_all_nine_machines() {
    let points = fig5_global_information(3, 5);
    assert_eq!(points.len(), 9);
    assert_eq!(points.iter().filter(|p| p.interfered).count(), 3);
    assert!(points
        .iter()
        .all(|p| p.net_stalls.is_finite() && p.cpi.is_finite()));
}

#[test]
fn fig6_breakdown_runs_for_every_workload_and_scenario() {
    for workload in CloudWorkload::ALL {
        for scenario in Fig6Scenario::ALL {
            let cell = fig6_cpi_breakdown(workload, scenario, 6);
            assert!(cell.isolation.iter().all(|v| v.is_finite() && *v >= 0.0));
            assert!(cell.production.iter().all(|v| v.is_finite() && *v >= 0.0));
            assert!(!cell.expected.is_empty());
        }
    }
}

#[test]
fn fig7_i7_port_runs() {
    let clusters = fig7_i7_port(7);
    assert!(!clusters.points.is_empty());
    assert!(clusters.separation_score.is_finite());
}

#[test]
fn fig8_detection_covers_three_days() {
    let result = fig8_detection(CloudWorkload::DataServing, 8);
    assert_eq!(result.days.len(), 3);
    for day in &result.days {
        assert!((0.0..=1.0).contains(&day.detection_rate));
        assert!((0.0..=1.0).contains(&day.false_positive_rate));
    }
    assert_eq!(result.cumulative_profiling_minutes.len(), 72);
}

#[test]
fn fig9_sweep_is_monotone_in_shape() {
    let points = fig9_degradation_accuracy(CloudWorkload::DataServing, 9);
    assert!(!points.is_empty());
    assert!(points
        .iter()
        .all(|p| p.client_reported.is_finite() && p.estimated.is_finite()));
}

#[test]
fn fig10_accuracy_runs_for_every_workload() {
    let benchmark = trained();
    for workload in CloudWorkload::ALL {
        let points = fig10_synthetic_accuracy(workload, &benchmark, 10);
        assert_eq!(points.len(), 5, "five stress intensities");
        assert!(points
            .iter()
            .all(|p| p.real_degradation.is_finite() && p.synthetic_degradation.is_finite()));
    }
}

#[test]
fn fig11_placement_predicts_every_candidate() {
    let result = fig11_placement_robustness(&trained(), 11);
    assert!(result.best <= result.average + 1e-12);
    assert!(result.average <= result.worst + 1e-12);
    assert!(result.deepdive_choice.is_finite());
}

#[test]
fn fig12_baselines_profile_more_than_deepdive() {
    let result = fig12_profiling_overhead(12);
    assert_eq!(result.hours.len(), 72);
    let last = result.hours.len() - 1;
    assert!(result.deepdive[last] <= result.baseline_5[last]);
    assert!(result.deepdive[last].is_finite());
}

#[test]
fn fig13_and_fig14_reaction_curves_run() {
    // The same entry point the fig13/fig14 benches drive, at bench-default
    // parameters but a single server count.
    let config = ScenarioConfig {
        servers: 4,
        ..ScenarioConfig::default()
    };
    let curve = reaction_time_curve(&config, &paper_fractions());
    assert_eq!(curve.len(), paper_fractions().len());
    assert!(curve.iter().all(|p| p
        .mean_reaction_minutes
        .is_none_or(|m| m.is_finite() && m >= 0.0)));
}

#[test]
fn memory_overhead_table_is_within_the_paper_budget() {
    let bytes = memory_overhead_bytes_per_vm_day();
    assert!(bytes > 0);
    assert!(
        bytes < 5 * 1024,
        "§5.5 bounds the per-VM-day footprint at 5 KB, got {bytes}"
    );
}
