//! Figure 13: mean reaction time of the profiling farm under Poisson VM
//! arrivals — (a) local information only, (b) with global information,
//! (c) sweeping the Zipf popularity tail index.

use criterion::{criterion_group, criterion_main, Criterion};
use queueing::scenarios::{paper_fractions, reaction_time_curve, ScenarioConfig};
use traces::ArrivalModel;

fn print_curves() {
    let fractions = paper_fractions();
    println!("# Figure 13(a) — local information only, Poisson arrivals, 1000 VMs/day");
    println!("servers,interference_fraction,mean_reaction_min");
    for servers in [2usize, 4, 8, 16] {
        let curve = reaction_time_curve(
            &ScenarioConfig {
                servers,
                popularity: None,
                ..Default::default()
            },
            &fractions,
        );
        for p in &curve {
            let value = p
                .mean_reaction_minutes
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "unstable".into());
            println!("{},{:.1},{}", servers, p.interference_fraction, value);
        }
    }
    println!("# Figure 13(b) — with global information (Zipf alpha = 1.5 over 200 apps)");
    println!("servers,interference_fraction,mean_reaction_min");
    for servers in [2usize, 4, 8, 16] {
        let curve = reaction_time_curve(
            &ScenarioConfig {
                servers,
                popularity: Some((200, 1.5)),
                ..Default::default()
            },
            &fractions,
        );
        for p in &curve {
            let value = p
                .mean_reaction_minutes
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "unstable".into());
            println!("{},{:.1},{}", servers, p.interference_fraction, value);
        }
    }
    println!("# Figure 13(c) — four servers, sweeping the popularity tail index alpha");
    println!("alpha,interference_fraction,mean_reaction_min");
    for (label, popularity) in [
        ("inf (no global info)", None),
        ("2.5", Some((200usize, 2.5))),
        ("2.0", Some((200, 2.0))),
        ("1.5", Some((200, 1.5))),
        ("1.0", Some((200, 1.0))),
    ] {
        let curve = reaction_time_curve(
            &ScenarioConfig {
                servers: 4,
                popularity,
                ..Default::default()
            },
            &fractions,
        );
        for p in &curve {
            let value = p
                .mean_reaction_minutes
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "unstable".into());
            println!("{},{:.1},{}", label, p.interference_fraction, value);
        }
    }
}

fn bench_kernel(c: &mut Criterion) {
    print_curves();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("reaction_curve_4_servers", |b| {
        b.iter(|| {
            reaction_time_curve(
                &ScenarioConfig {
                    servers: 4,
                    arrival_model: ArrivalModel::Poisson,
                    ..Default::default()
                },
                &paper_fractions(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
