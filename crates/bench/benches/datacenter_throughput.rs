//! Datacenter-scale throughput: the sparse, activity-tracked epoch engine
//! vs the dense sweep, and the event-driven [`DatacenterService`] front end.
//!
//! The dense engine resolves every machine every epoch, so fleet cost is
//! O(machines) regardless of how many VMs are actually doing anything.  At
//! datacenter scale the steady state is the opposite: a small active
//! working set on top of a large quiescent majority (idle VMs whose
//! workloads are provably static at load zero).  The sparse engine
//! replays each quiescent machine's cached epoch report — a memcpy plus an
//! epoch-stamp patch — and only runs the contention resolver for machines
//! whose demand can still change, while staying bit-identical to the dense
//! sweep (property-tested under churn in `tests/engine_equivalence.rs`).
//!
//! Two measurement families:
//!
//! * **engine rows** — fixed fleets of 10k and 100k Xeon machines at real
//!   density (four 2-vCPU VMs each) with an `activity` fraction of the
//!   machines held busy and the rest idle-static, dense vs sparse through
//!   both per-epoch `step` and the report-free `advance_epochs` bulk path.
//!   Each row's `speedup_vs_dense` is against the dense baseline of its
//!   own API; advance rows additionally carry `speedup_vs_dense_sweep`,
//!   the ratio against the per-epoch dense sweep with materialized
//!   reports — the engine's only mode before sparse stepping existed, and
//!   the baseline for the headline claim: at 10% activity on 10k machines
//!   the sparse bulk path must sustain ≥ 10× the old dense sweep's
//!   VM-epochs/sec.
//! * **service rows** — the full event loop: `traces` session streams
//!   (Hotmail diurnal and bursty EC2 presets) arrive, run hot, go idle and
//!   depart through [`DatacenterService`]; the row reports sustained
//!   VM-arrivals/sec and VM-epochs/sec of the whole pipeline.
//! * **fault rows** — the same stream (spread placement on, so the
//!   fault-free baseline isolates the fault machinery) stepped over a
//!   fixed horizon under a blast-radius sweep: fault-free baseline (not
//!   dumped), a disabled [`FaultPlane`] (idle overhead, must stay within a
//!   few percent), [`FaultConfig::light`] (independent machine crashes,
//!   blast radius 1), [`FaultConfig::rack_outages`] (whole racks at once),
//!   [`FaultConfig::domain_outages`] (whole power domains), and
//!   [`FaultConfig::maintenance`] (planned drains with graceful notice).
//!   All fault scenarios share the same start rate and window lengths, so
//!   expected machine downtime matches while the blast radius — and hence
//!   evacuation burstiness, retry latency and cascade-induced
//!   abandonments — grows; the drain row must show lower disruption
//!   (instant evacuations) than the equivalent-crash `light` row.
//!
//! A parallel row can only beat serial when the OS grants more than one
//! hardware thread, so every engine row carries `available_parallelism`
//! and `threads > 1` rows on a single-core runner carry
//! `"overhead_only": true` (enforced by `check_bench_json`).
//!
//! Results are printed as a table and dumped to `BENCH_datacenter.json` at
//! the workspace root; `--smoke` (the CI step) shrinks fleets and budgets.

use std::time::{Duration, Instant};

use cloudsim::faults::{FaultConfig, FaultPlane, Topology};
use cloudsim::service::{DatacenterService, ServiceConfig, ServiceStats};
use cloudsim::{Cluster, ClusterSeed, EpochEngine, ExecutionMode, PmId, Scheduler, Vm, VmId};
use criterion::{criterion_group, Criterion};
use hwsim::MachineSpec;
use workloads::{AppId, ClientEmulator, DataServing, WebSearch, Workload};

/// VMs per machine: the Xeon X5472's real capacity with 2-vCPU VMs.
const VMS_PER_MACHINE: usize = 4;

/// Cloud-app tenant mix.  Both families are provably static at load zero,
/// so a machine whose VMs all idle goes quiescent under the sparse engine.
fn tenant(i: u64) -> Vm {
    let workload: Box<dyn Workload> = if i.is_multiple_of(2) {
        Box::new(DataServing::with_defaults(AppId(1)))
    } else {
        Box::new(WebSearch::with_defaults(AppId(2)))
    };
    let client = if i.is_multiple_of(2) {
        ClientEmulator::new(8_000.0, 4.0)
    } else {
        ClientEmulator::new(1_200.0, 25.0)
    };
    Vm::new(VmId(i), workload, client)
}

/// A `machines`-machine Xeon fleet at real density.  Placement is direct
/// (`PmId == i / 4`), so building a 100k-machine fleet stays O(machines).
fn fleet(machines: usize) -> Cluster {
    let mut cluster =
        Cluster::homogeneous(machines, MachineSpec::xeon_x5472(), Scheduler::default());
    for i in 0..(machines * VMS_PER_MACHINE) as u64 {
        let pm = PmId(i / VMS_PER_MACHINE as u64);
        cluster.place_on(pm, tenant(i)).expect("fleet has room");
    }
    cluster
}

/// Offered load with `activity_permille / 1000` of the machines busy.
///
/// VM ids are dense (`machine index == vm / 4`), so striding the machine
/// index spreads the active set evenly across the fleet.  Active VMs get a
/// per-VM load in `[0.6, 0.8)`; idle VMs offer zero, where their workloads
/// are static and the sparse engine can go quiescent.
fn offered_load(vm: VmId, activity_permille: u64) -> f64 {
    let machine = vm.0 / VMS_PER_MACHINE as u64;
    if machine % 1000 < activity_permille {
        0.6 + 0.05 * (vm.0 % 4) as f64
    } else {
        0.0
    }
}

struct EngineRow {
    machines: usize,
    vms: usize,
    mode: &'static str,
    activity: f64,
    threads: usize,
    epochs_per_sec: f64,
    vm_epochs_per_sec: f64,
    /// Speedup against the dense baseline of the *same* API (step rows vs
    /// dense step, advance rows vs dense advance) — isolates the sparse
    /// win from the separate saving of not packaging reports.
    speedup_vs_dense: f64,
    /// Advance rows only: speedup against the per-epoch dense sweep with
    /// materialized reports — the engine's pre-sparse behavior, i.e. "the
    /// wall" the sparse service mode replaces.
    speedup_vs_dense_sweep: Option<f64>,
}

struct ServiceRow {
    preset: &'static str,
    machines: usize,
    epochs_per_sec: f64,
    vm_epochs_per_sec: f64,
    vm_arrivals_per_sec: f64,
    peak_resident: usize,
}

/// One fault-plane scenario against the fault-free baseline of the same
/// stream: what the crash/evacuation/retry machinery costs and delivers.
struct FaultRow {
    /// `"disabled"` (plane attached, every rate zero — the idle-overhead
    /// row, which must stay within a few percent of fault-free), `"light"`
    /// (independent machine crashes), `"rack"` / `"domain"` (correlated
    /// outages felling a whole rack / power domain per draw), or `"drain"`
    /// (planned maintenance with a graceful notice window).
    scenario: &'static str,
    machines: usize,
    /// Machines taken down by one fault draw: 1 for independent crashes
    /// and drains, `machines_per_rack` / `machines_per_domain()` for the
    /// correlated scenarios.
    blast_radius: usize,
    epochs_per_sec: f64,
    /// Slowdown vs the fault-free run of the same stream, in percent
    /// (negative = measured faster, i.e. inside noise).
    overhead_pct: f64,
    /// Machine-epochs outside down windows, as a percentage.
    availability_pct: f64,
    /// Mean epochs a displaced VM waited in the retry queue before landing
    /// (zero when every evacuation placed immediately).
    evacuation_latency_epochs: f64,
    crashes: u64,
    evacuations: u64,
    /// VMs migrated off draining machines gracefully (zero in every
    /// crash-only scenario).
    drain_migrations: u64,
    /// Parked VMs that exhausted their retry budget — the cascade cost of
    /// correlated evacuation bursts overwhelming surviving capacity.
    abandonments: u64,
}

fn mode_threads(mode: ExecutionMode) -> usize {
    match mode {
        ExecutionMode::Serial => 1,
        ExecutionMode::Sharded { threads } | ExecutionMode::Pooled { threads } => threads,
    }
}

/// Steps `cluster` for at least `budget` (always ≥ 1 epoch) and returns
/// (epochs/sec).  The warm-up epoch grows resolver buffers and, in sparse
/// mode, fills the quiescent caches, so the timed region measures the
/// steady state both engines would sustain.
fn measure_engine(
    machines: usize,
    mode: ExecutionMode,
    sparse: bool,
    activity_permille: u64,
    budget: Duration,
) -> f64 {
    let mut cluster = fleet(machines);
    let mut engine = EpochEngine::new(ClusterSeed::new(machines as u64), mode);
    engine.set_sparse(sparse);
    criterion::black_box(engine.step(&mut cluster, |vm| offered_load(vm, activity_permille)));
    let start = Instant::now();
    let mut epochs = 0u64;
    loop {
        criterion::black_box(engine.step(&mut cluster, |vm| offered_load(vm, activity_permille)));
        epochs += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    epochs as f64 / start.elapsed().as_secs_f64()
}

/// Epochs per bulk-advance call: loads are held fixed across the batch
/// (the documented [`EpochEngine::advance_epochs`] contract), so the
/// quiescent check amortizes to ~nothing per epoch.
const ADVANCE_BATCH: u64 = 16;

/// Same measurement through the report-free [`EpochEngine::advance_epochs`]
/// bulk path — the throughput entry point for callers that do not consume
/// per-epoch reports.  Sparse advance visits a quiescent machine once per
/// batch instead of copying its reports once per epoch, which is where the
/// order-of-magnitude win over the dense sweep lives.
fn measure_advance(machines: usize, sparse: bool, activity_permille: u64, budget: Duration) -> f64 {
    let mut cluster = fleet(machines);
    let mut engine = EpochEngine::serial(ClusterSeed::new(machines as u64));
    engine.set_sparse(sparse);
    criterion::black_box(engine.step(&mut cluster, |vm| offered_load(vm, activity_permille)));
    let start = Instant::now();
    let mut epochs = 0u64;
    loop {
        let summary = engine.advance_epochs(&mut cluster, ADVANCE_BATCH, |vm| {
            offered_load(vm, activity_permille)
        });
        criterion::black_box(summary.vm_epochs);
        epochs += ADVANCE_BATCH;
        if start.elapsed() >= budget {
            break;
        }
    }
    epochs as f64 / start.elapsed().as_secs_f64()
}

/// Dense-vs-sparse pairs at a given fleet size and activity fraction, for
/// both the per-epoch report-returning path and the bulk-advance path.
/// Each pair's speedup is against its own dense baseline, so the sparse
/// win is never conflated with the (separate) saving of not packaging
/// reports.
fn engine_pair(
    machines: usize,
    activity_permille: u64,
    budget: Duration,
    rows: &mut Vec<EngineRow>,
) {
    let vms = machines * VMS_PER_MACHINE;
    let activity = activity_permille as f64 / 1000.0;
    let dense = measure_engine(
        machines,
        ExecutionMode::Serial,
        false,
        activity_permille,
        budget,
    );
    let sparse = measure_engine(
        machines,
        ExecutionMode::Serial,
        true,
        activity_permille,
        budget,
    );
    let dense_advance = measure_advance(machines, false, activity_permille, budget);
    let sparse_advance = measure_advance(machines, true, activity_permille, budget);
    for (mode, rate, baseline, vs_sweep) in [
        ("dense", dense, dense, None),
        ("sparse", sparse, dense, None),
        (
            "dense-advance",
            dense_advance,
            dense_advance,
            Some(dense_advance / dense),
        ),
        (
            "sparse-advance",
            sparse_advance,
            dense_advance,
            Some(sparse_advance / dense),
        ),
    ] {
        rows.push(EngineRow {
            machines,
            vms,
            mode,
            activity,
            threads: 1,
            epochs_per_sec: rate,
            vm_epochs_per_sec: rate * vms as f64,
            speedup_vs_dense: rate / baseline,
            speedup_vs_dense_sweep: vs_sweep,
        });
    }
}

/// Drives a preset session stream through the service for at least
/// `budget` and reports sustained rates of the whole pipeline (event
/// application + placement + sparse stepping).
fn measure_service(
    preset: &'static str,
    machines: usize,
    sessions: Vec<traces::VmSession>,
    budget: Duration,
) -> ServiceRow {
    let mut service = DatacenterService::new(
        ServiceConfig::xeon_fleet(machines, machines as u64),
        sessions,
    );
    // Warm-up: admit the first wave and fill resolver buffers.
    service.step_epoch();
    let before = service.stats();
    let start = Instant::now();
    let mut epochs = 0u64;
    loop {
        criterion::black_box(service.step_epoch().len());
        epochs += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = service.stats();
    ServiceRow {
        preset,
        machines,
        epochs_per_sec: epochs as f64 / elapsed,
        vm_epochs_per_sec: (stats.vm_epochs - before.vm_epochs) as f64 / elapsed,
        vm_arrivals_per_sec: (stats.arrivals - before.arrivals) as f64 / elapsed,
        peak_resident: stats.peak_resident,
    }
}

/// Steps the same session stream for a fixed epoch count with an optional
/// fault plane attached and returns (epochs/sec, final stats, total epochs
/// stepped including the warm-up).  Fixed epochs — not a time budget —
/// because the fault rows compare *rates across runs* and convert
/// `down_machine_epochs` into an availability percentage, both of which
/// need identical horizons.
fn measure_fault_service(
    machines: usize,
    topology: Topology,
    sessions: Vec<traces::VmSession>,
    plane: Option<FaultPlane>,
    epochs: u64,
) -> (f64, ServiceStats, u64) {
    // Spread placement is on for every run of the family — including the
    // fault-free baseline — so the overhead column isolates the fault
    // machinery instead of conflating it with the placement policy.
    let mut service = DatacenterService::new(
        ServiceConfig::xeon_fleet(machines, machines as u64).with_spread(topology),
        sessions,
    );
    if let Some(plane) = plane {
        service.set_fault_plane(plane);
    }
    service.step_epoch();
    let start = Instant::now();
    for _ in 0..epochs {
        criterion::black_box(service.step_epoch().len());
    }
    let rate = epochs as f64 / start.elapsed().as_secs_f64();
    (rate, service.stats(), epochs + 1)
}

/// The fault family: one fault-free baseline (not dumped — it only anchors
/// the overhead column), then the same stream under the blast-radius
/// sweep — disabled plane (idle overhead must stay under a few percent),
/// independent crashes, whole-rack outages, whole-power-domain outages,
/// and planned maintenance drains.  All fault scenarios share the start
/// rate and window lengths, so expected machine downtime is comparable
/// while the failure-domain size (and the drain's graceful notice) is the
/// variable under test.
fn fault_rows(smoke: bool) -> Vec<FaultRow> {
    // Epochs are 1 s of simulated time, so the horizon only needs to cover
    // the stepped window; the peak arrival rate is sized so the fleet
    // carries a substantial resident population for the whole measurement
    // without saturating (rejections would conflate admission-retry latency
    // with evacuation latency).  The topology is scaled to the fleet so
    // both runs span several racks and power domains.
    let (machines, epochs, rate_per_day, horizon_days, topology) = if smoke {
        (200, 120, 500_000.0, 0.002, Topology::new(10, 4))
    } else {
        (2_000, 1_000, 600_000.0, 0.02, Topology::conventional())
    };
    let stream = || traces::hotmail_sessions(rate_per_day, horizon_days, 7);
    // Each scenario is measured twice and keeps the faster rate: the first
    // run of the process pays allocator and cache warmup that later runs do
    // not, which would otherwise masquerade as (negative) fault overhead.
    let best_of_two = |plane: Option<FaultPlane>| {
        let (first, _, _) = measure_fault_service(machines, topology, stream(), plane, epochs);
        let (second, stats, total_epochs) =
            measure_fault_service(machines, topology, stream(), plane, epochs);
        (first.max(second), stats, total_epochs)
    };
    let (baseline, _, _) = best_of_two(None);
    [
        ("disabled", FaultConfig::disabled(), 1),
        ("light", FaultConfig::light(), 1),
        (
            "rack",
            FaultConfig::rack_outages(topology),
            topology.machines_per_rack,
        ),
        (
            "domain",
            FaultConfig::domain_outages(topology),
            topology.machines_per_domain(),
        ),
        ("drain", FaultConfig::maintenance(), 1),
    ]
    .into_iter()
    .map(|(scenario, config, blast_radius)| {
        let plane = FaultPlane::new(0xFA17, config);
        let (rate, stats, total_epochs) = best_of_two(Some(plane));
        let machine_epochs = (machines as u64 * total_epochs) as f64;
        let evacuation_latency_epochs = if stats.retry_admissions > 0 {
            stats.retry_wait_epochs as f64 / stats.retry_admissions as f64
        } else {
            0.0
        };
        FaultRow {
            scenario,
            machines,
            blast_radius,
            epochs_per_sec: rate,
            overhead_pct: (baseline / rate - 1.0) * 100.0,
            availability_pct: 100.0 * (1.0 - stats.down_machine_epochs as f64 / machine_epochs),
            evacuation_latency_epochs,
            crashes: stats.crashes,
            evacuations: stats.evacuations,
            drain_migrations: stats.drain_migrations,
            abandonments: stats.abandonments,
        }
    })
    .collect()
}

fn run_measurements(smoke: bool) -> (Vec<EngineRow>, Vec<ServiceRow>) {
    // Smoke keeps CI fast but walks the exact same code paths; the dense
    // 100k sweep is the one genuinely expensive row, so it gets its own
    // (smaller) budget that still fits ≥ 1 epoch.
    let (small, large, budget) = if smoke {
        (200, 1_000, Duration::from_millis(20))
    } else {
        (10_000, 100_000, Duration::from_millis(1_500))
    };
    let mut engine_rows = Vec::new();
    // The headline: 10% activity, where sparse must clear 10× dense.
    engine_pair(small, 100, budget, &mut engine_rows);
    // Worst case for sparse: everything active, caches never hit — this
    // row bounds the bookkeeping overhead (speedup ≈ 1.0).
    engine_pair(small, 1_000, budget, &mut engine_rows);
    // Fleet-scale: the same sparse win must survive 10× more machines.
    engine_pair(large, 100, budget, &mut engine_rows);
    // One pooled sparse row: exercises the scatter_map dispatch path at
    // scale (on a single-core runner this measures overhead only and the
    // dump says so).
    let pooled_mode = ExecutionMode::Pooled { threads: 4 };
    let pooled = measure_engine(small, pooled_mode, true, 100, budget);
    let dense_small = engine_rows[0].epochs_per_sec;
    engine_rows.push(EngineRow {
        machines: small,
        vms: small * VMS_PER_MACHINE,
        mode: "sparse-pooled",
        activity: 0.1,
        threads: mode_threads(pooled_mode),
        epochs_per_sec: pooled,
        vm_epochs_per_sec: pooled * (small * VMS_PER_MACHINE) as f64,
        speedup_vs_dense: pooled / dense_small,
        speedup_vs_dense_sweep: None,
    });

    // The service front end: diurnal Hotmail and bursty EC2 streams sized
    // so the fleet stays busy for the whole measured window.
    let (rate_per_day, horizon_days) = if smoke {
        (40_000.0, 0.05)
    } else {
        (2_000_000.0, 2.0)
    };
    let service_rows = vec![
        measure_service(
            "hotmail",
            small,
            traces::hotmail_sessions(rate_per_day, horizon_days, 7),
            budget,
        ),
        measure_service(
            "ec2",
            small,
            traces::ec2_sessions(rate_per_day, horizon_days, 7),
            budget,
        ),
        measure_service(
            "hotmail",
            large,
            traces::hotmail_sessions(rate_per_day * 4.0, horizon_days, 7),
            budget,
        ),
    ];
    (engine_rows, service_rows)
}

fn print_table(engine_rows: &[EngineRow], service_rows: &[ServiceRow], fault_rows: &[FaultRow]) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("# Datacenter throughput — sparse vs dense stepping ({cores} core(s) available)");
    println!(
        "machines,vms,mode,activity,threads,epochs_per_sec,vm_epochs_per_sec,\
         speedup_vs_dense,speedup_vs_dense_sweep"
    );
    for r in engine_rows {
        println!(
            "{},{},{},{:.2},{},{:.1},{:.0},{:.2},{}",
            r.machines,
            r.vms,
            r.mode,
            r.activity,
            r.threads,
            r.epochs_per_sec,
            r.vm_epochs_per_sec,
            r.speedup_vs_dense,
            r.speedup_vs_dense_sweep
                .map_or_else(|| "-".to_string(), |s| format!("{s:.2}"))
        );
    }
    println!("# DatacenterService event loop");
    println!("preset,machines,epochs_per_sec,vm_epochs_per_sec,vm_arrivals_per_sec,peak_resident");
    for r in service_rows {
        println!(
            "{},{},{:.1},{:.0},{:.1},{}",
            r.preset,
            r.machines,
            r.epochs_per_sec,
            r.vm_epochs_per_sec,
            r.vm_arrivals_per_sec,
            r.peak_resident
        );
    }
    println!("# Fault plane — blast-radius sweep vs the fault-free baseline");
    println!(
        "scenario,machines,blast_radius,epochs_per_sec,overhead_pct,availability_pct,\
         evacuation_latency_epochs,crashes,evacuations,drain_migrations,abandonments"
    );
    for r in fault_rows {
        println!(
            "{},{},{},{:.1},{:.2},{:.3},{:.2},{},{},{},{}",
            r.scenario,
            r.machines,
            r.blast_radius,
            r.epochs_per_sec,
            r.overhead_pct,
            r.availability_pct,
            r.evacuation_latency_epochs,
            r.crashes,
            r.evacuations,
            r.drain_migrations,
            r.abandonments
        );
    }
}

/// Dumps the rows to `BENCH_datacenter.json` at the workspace root so
/// successive PRs can track the sparse-engine trajectory.
fn dump_json(
    engine_rows: &[EngineRow],
    service_rows: &[ServiceRow],
    fault_rows: &[FaultRow],
    smoke: bool,
) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut entries: Vec<String> = engine_rows
        .iter()
        .map(|r| {
            // A multi-threaded row measured on a single-core runner records
            // coordination overhead, not scaling — say so in the row itself
            // (check_bench_json rejects dumps that omit the flag).
            let overhead_only = r.threads > 1 && cores == 1;
            let vs_sweep = r.speedup_vs_dense_sweep.map_or(String::new(), |s| {
                format!("\"speedup_vs_dense_sweep\": {s:.2}, ")
            });
            format!(
                "  {{\"kind\": \"engine\", \"machines\": {}, \"vms\": {}, \"mode\": \"{}\", \
                 \"activity\": {}, \"threads\": {}, \"epochs_per_sec\": {:.1}, \
                 \"vm_epochs_per_sec\": {:.0}, \"speedup_vs_dense\": {:.2}, {vs_sweep}\
                 \"available_parallelism\": {cores}, \"overhead_only\": {overhead_only}}}",
                r.machines,
                r.vms,
                r.mode,
                r.activity,
                r.threads,
                r.epochs_per_sec,
                r.vm_epochs_per_sec,
                r.speedup_vs_dense
            )
        })
        .collect();
    entries.extend(service_rows.iter().map(|r| {
        format!(
            "  {{\"kind\": \"service\", \"preset\": \"{}\", \"machines\": {}, \
             \"epochs_per_sec\": {:.1}, \"vm_epochs_per_sec\": {:.0}, \
             \"vm_arrivals_per_sec\": {:.1}, \"peak_resident\": {}, \
             \"available_parallelism\": {cores}}}",
            r.preset,
            r.machines,
            r.epochs_per_sec,
            r.vm_epochs_per_sec,
            r.vm_arrivals_per_sec,
            r.peak_resident
        )
    }));
    entries.extend(fault_rows.iter().map(|r| {
        format!(
            "  {{\"kind\": \"fault\", \"scenario\": \"{}\", \"machines\": {}, \
             \"blast_radius\": {}, \"epochs_per_sec\": {:.1}, \"overhead_pct\": {:.2}, \
             \"availability_pct\": {:.3}, \"evacuation_latency_epochs\": {:.2}, \
             \"crashes\": {}, \"evacuations\": {}, \"drain_migrations\": {}, \
             \"abandonments\": {}, \"available_parallelism\": {cores}}}",
            r.scenario,
            r.machines,
            r.blast_radius,
            r.epochs_per_sec,
            r.overhead_pct,
            r.availability_pct,
            r.evacuation_latency_epochs,
            r.crashes,
            r.evacuations,
            r.drain_migrations,
            r.abandonments
        )
    }));
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    bench::write_dump("datacenter", smoke, &json);
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("datacenter_throughput");
    group.sample_size(10);
    for (name, sparse) in [
        ("epoch_1k_machines_dense", false),
        ("epoch_1k_machines_sparse", true),
    ] {
        let mut cluster = fleet(1_000);
        let mut engine = EpochEngine::serial(ClusterSeed::new(1_000));
        engine.set_sparse(sparse);
        engine.step(&mut cluster, |vm| offered_load(vm, 100));
        group.bench_function(name, |b| {
            b.iter(|| engine.step(&mut cluster, |vm| offered_load(vm, 100)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (engine_rows, service_rows) = run_measurements(smoke);
    let fault_rows = fault_rows(smoke);
    print_table(&engine_rows, &service_rows, &fault_rows);
    // Smoke runs dump too (to the .smoke.json sibling): CI validates the
    // freshly written file with `cargo run -p bench --bin check_bench_json`,
    // so a bench that breaks its own dump fails the build instead of
    // silently corrupting the cross-PR trajectory.
    dump_json(&engine_rows, &service_rows, &fault_rows, smoke);
    benches();
}
