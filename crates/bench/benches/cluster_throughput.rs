//! Cluster stepping throughput: epochs/sec through the [`EpochEngine`] at
//! production fleet sizes — serial vs spawn-per-call sharding vs the
//! persistent worker pool.
//!
//! This is the scaling item the engine refactor unlocks: with per-`(vm,
//! epoch)` RNG streams, machines are data-independent within an epoch, so
//! the engine can step balanced contiguous machine shards in parallel and
//! merge reports in machine order — bit-identical to serial, but using
//! every core.  The bench steps 64-, 256- and 512-machine Xeon fleets at
//! the testbed's real density (four 2-vCPU VMs per 8-core machine, mixed
//! serving/search/analytics/stress tenants) through `Serial`,
//! `Sharded { 1, 2, 4, 8 }` (scoped threads spawned per call — the old
//! baseline), `Pooled { 2, 4, 8 }` (persistent workers, barrier handoff —
//! the production mode), plus the `CLOUDSIM_THREADS` env-default mode, and
//! additionally through the batched `step_epochs` path (one barrier per
//! 8-epoch batch instead of per epoch — the amortisation available to
//! callers that do not mutate the cluster between epochs).
//! A parallel run can only beat serial when the OS actually grants more
//! than one hardware thread, so each JSON record carries
//! `available_parallelism`, and rows with `threads > 1` on a single-core
//! runner additionally carry `"overhead_only": true` — they measure pure
//! coordination overhead and say nothing about multi-core scaling
//! (`check_bench_json` enforces the flag).
//!
//! The run also measures migration churn (`Cluster::migrate` round-trips per
//! second) to back the `PhysicalMachine::remove_vm` linear-scan decision:
//! at four VMs per machine the scan sustains millions of migrations/sec,
//! orders of magnitude beyond any plausible migration rate.
//!
//! Results are printed as a table and dumped to `BENCH_cluster.json` at the
//! workspace root; `--smoke` (the CI step) shrinks the measurement budget.

use std::time::{Duration, Instant};

use cloudsim::{Cluster, ClusterSeed, EpochEngine, ExecutionMode, PmId, Scheduler, Vm, VmId};
use criterion::{criterion_group, Criterion};
use hwsim::MachineSpec;
use workloads::{
    AppId, ClientEmulator, DataAnalytics, DataServing, MemoryStress, WebSearch, Workload,
};

/// VMs per machine: the Xeon X5472's real capacity with 2-vCPU VMs.
const VMS_PER_MACHINE: usize = 4;

/// Deterministic tenant mix, one workload family per slot index.
fn tenant(i: u64) -> Vm {
    let workload: Box<dyn Workload> = match i % 4 {
        0 => Box::new(DataServing::with_defaults(AppId(1))),
        1 => Box::new(WebSearch::with_defaults(AppId(2))),
        2 => Box::new(DataAnalytics::worker(AppId(3))),
        _ => Box::new(MemoryStress::new(AppId(900), 256.0)),
    };
    let client = match i % 4 {
        0 => ClientEmulator::new(8_000.0, 4.0),
        1 => ClientEmulator::new(1_200.0, 25.0),
        2 => ClientEmulator::new(40.0, 400.0),
        _ => ClientEmulator::new(1.0, 1.0),
    };
    Vm::new(VmId(i), workload, client)
}

/// A `machines`-machine Xeon fleet filled to its real density.
fn fleet(machines: usize) -> Cluster {
    let mut cluster =
        Cluster::homogeneous(machines, MachineSpec::xeon_x5472(), Scheduler::default());
    for i in 0..(machines * VMS_PER_MACHINE) as u64 {
        cluster.place_first_fit(tenant(i)).expect("fleet has room");
    }
    cluster
}

fn mode_label(mode: ExecutionMode) -> String {
    match mode {
        ExecutionMode::Serial => "serial".to_string(),
        ExecutionMode::Sharded { threads } => format!("sharded-{threads}"),
        ExecutionMode::Pooled { threads } => format!("pooled-{threads}"),
    }
}

fn mode_threads(mode: ExecutionMode) -> usize {
    match mode {
        ExecutionMode::Serial => 1,
        ExecutionMode::Sharded { threads } | ExecutionMode::Pooled { threads } => threads,
    }
}

struct Measurement {
    machines: usize,
    vms: usize,
    label: String,
    threads: usize,
    epochs_per_sec: f64,
    speedup_vs_serial: f64,
}

/// Steps `cluster` under `mode` for at least `budget` and returns epochs/sec.
fn measure_epochs_per_sec(machines: usize, mode: ExecutionMode, budget: Duration) -> f64 {
    let mut cluster = fleet(machines);
    let engine = EpochEngine::new(ClusterSeed::new(machines as u64), mode);
    // Warm-up: grow every machine's resolver buffers before timing.
    criterion::black_box(engine.step(&mut cluster, |_| 0.7));
    let start = Instant::now();
    let mut epochs = 0u64;
    while start.elapsed() < budget {
        criterion::black_box(engine.step(&mut cluster, |v| 0.4 + 0.05 * (v.0 % 8) as f64));
        epochs += 1;
    }
    epochs as f64 / start.elapsed().as_secs_f64()
}

/// Same measurement through the batched [`EpochEngine::step_epochs`] path:
/// one `thread::scope` spawn per `batch` epochs instead of per epoch, the
/// amortisation available whenever nothing mutates the cluster mid-batch.
fn measure_batched_epochs_per_sec(
    machines: usize,
    mode: ExecutionMode,
    batch: usize,
    budget: Duration,
) -> f64 {
    let mut cluster = fleet(machines);
    let engine = EpochEngine::new(ClusterSeed::new(machines as u64), mode);
    criterion::black_box(engine.step(&mut cluster, |_| 0.7));
    let start = Instant::now();
    let mut epochs = 0u64;
    while start.elapsed() < budget {
        criterion::black_box(
            engine.step_epochs(&mut cluster, batch, |_, v| 0.4 + 0.05 * (v.0 % 8) as f64),
        );
        epochs += batch as u64;
    }
    epochs as f64 / start.elapsed().as_secs_f64()
}

/// Migration churn through `Cluster::migrate` / `PhysicalMachine::remove_vm`:
/// round-trips one VM between two machines at real density for `budget`.
fn measure_migrations_per_sec(budget: Duration) -> f64 {
    let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
    for i in 0..4u64 {
        cluster.place_on(PmId(0), tenant(i)).expect("room on pm-0");
    }
    for i in 4..7u64 {
        cluster.place_on(PmId(1), tenant(i)).expect("room on pm-1");
    }
    let start = Instant::now();
    let mut moves = 0u64;
    while start.elapsed() < budget {
        cluster.migrate(VmId(0), PmId(1)).expect("pm-1 has a slot");
        cluster.migrate(VmId(0), PmId(0)).expect("pm-0 has a slot");
        moves += 2;
    }
    moves as f64 / start.elapsed().as_secs_f64()
}

fn run_measurements(budget: Duration) -> Vec<Measurement> {
    let mut results = Vec::new();
    for machines in [64usize, 256, 512] {
        // The thread-count matrix, plus whatever CLOUDSIM_THREADS selects.
        let mut modes = vec![
            ExecutionMode::Serial,
            ExecutionMode::Sharded { threads: 1 },
            ExecutionMode::Sharded { threads: 2 },
            ExecutionMode::Sharded { threads: 4 },
            ExecutionMode::Sharded { threads: 8 },
            ExecutionMode::Pooled { threads: 2 },
            ExecutionMode::Pooled { threads: 4 },
            ExecutionMode::Pooled { threads: 8 },
        ];
        let env_mode = ExecutionMode::from_env();
        if !modes.contains(&env_mode) {
            modes.push(env_mode);
        }
        let mut serial_rate = None;
        for mode in modes {
            let rate = measure_epochs_per_sec(machines, mode, budget);
            if mode == ExecutionMode::Serial {
                serial_rate = Some(rate);
            }
            results.push(Measurement {
                machines,
                vms: machines * VMS_PER_MACHINE,
                label: mode_label(mode),
                threads: mode_threads(mode),
                epochs_per_sec: rate,
                speedup_vs_serial: rate / serial_rate.expect("serial measured first"),
            });
        }
        // Batched stepping: one spawn set (Sharded) or one barrier (Pooled)
        // per 8-epoch batch via step_epochs.
        const BATCH: usize = 8;
        for threads in [2usize, 4, 8] {
            for mode in [
                ExecutionMode::Sharded { threads },
                ExecutionMode::Pooled { threads },
            ] {
                let rate = measure_batched_epochs_per_sec(machines, mode, BATCH, budget);
                results.push(Measurement {
                    machines,
                    vms: machines * VMS_PER_MACHINE,
                    label: format!("{}-batch{BATCH}", mode_label(mode)),
                    threads,
                    epochs_per_sec: rate,
                    speedup_vs_serial: rate / serial_rate.expect("serial measured first"),
                });
            }
        }
    }
    results
}

fn print_table(results: &[Measurement], migrations_per_sec: f64) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "# Cluster throughput — EpochEngine serial vs sharded vs pooled \
         ({cores} core(s) available)"
    );
    if cores == 1 {
        println!("# NOTE: single-core runner; parallel rows measure coordination overhead only.");
    }
    println!("machines,vms,mode,threads,epochs_per_sec,vm_epochs_per_sec,speedup_vs_serial");
    for r in results {
        println!(
            "{},{},{},{},{:.1},{:.0},{:.2}",
            r.machines,
            r.vms,
            r.label,
            r.threads,
            r.epochs_per_sec,
            r.epochs_per_sec * r.vms as f64,
            r.speedup_vs_serial
        );
    }
    println!(
        "# migration churn: {:.2}M migrations/sec through Cluster::migrate \
         (remove_vm linear scan at {VMS_PER_MACHINE} VMs/machine)",
        migrations_per_sec / 1.0e6
    );
}

/// Dumps the measurements to `BENCH_cluster.json` at the workspace root so
/// successive PRs can track the scaling trajectory.
fn dump_json(results: &[Measurement], migrations_per_sec: f64, smoke: bool) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut entries: Vec<String> = results
        .iter()
        .map(|r| {
            // A multi-threaded row measured on a single-core runner records
            // coordination overhead, not scaling — say so in the row itself
            // (check_bench_json rejects dumps that omit the flag).
            let overhead_only = r.threads > 1 && cores == 1;
            format!(
                "  {{\"machines\": {}, \"vms\": {}, \"mode\": \"{}\", \"threads\": {}, \
                 \"epochs_per_sec\": {:.1}, \"speedup_vs_serial\": {:.2}, \
                 \"available_parallelism\": {cores}, \"overhead_only\": {overhead_only}}}",
                r.machines, r.vms, r.label, r.threads, r.epochs_per_sec, r.speedup_vs_serial
            )
        })
        .collect();
    entries.push(format!(
        "  {{\"migration_churn_per_sec\": {migrations_per_sec:.0}, \
         \"available_parallelism\": {cores}}}"
    ));
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    bench::write_dump("cluster", smoke, &json);
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_throughput");
    group.sample_size(10);
    let cases = [
        ("epoch_64_machines_serial", ExecutionMode::Serial),
        (
            "epoch_64_machines_sharded_4",
            ExecutionMode::Sharded { threads: 4 },
        ),
        (
            "epoch_64_machines_pooled_4",
            ExecutionMode::Pooled { threads: 4 },
        ),
    ];
    for (name, mode) in cases {
        let mut cluster = fleet(64);
        let engine = EpochEngine::new(ClusterSeed::new(64), mode);
        group.bench_function(name, |b| {
            b.iter(|| engine.step(&mut cluster, |_| 0.7).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(300)
    };
    let results = run_measurements(budget);
    let migrations_per_sec = measure_migrations_per_sec(budget.min(Duration::from_millis(100)));
    print_table(&results, migrations_per_sec);
    // Smoke runs dump too (to the .smoke.json sibling): CI validates the
    // freshly written file with `cargo run -p bench --bin check_bench_json`,
    // so a bench that breaks its own dump fails the build instead of
    // silently corrupting the cross-PR trajectory.
    dump_json(&results, migrations_per_sec, smoke);
    benches();
}
