//! Resolver throughput: VMs resolved per second through the reusable
//! [`EpochResolver`] versus the pre-refactor allocating `resolve_epoch` path.
//!
//! This is the hot-path microbenchmark behind the ROADMAP's first scaling
//! item: every epoch of every simulated machine funnels through epoch
//! resolution, so the fleet size a simulation can sustain is directly
//! proportional to this number.  The bench resolves a fleet of machines at
//! 4, 16 and 64 VMs per machine, on homogeneous Xeon X5472 and Core
//! i7/Nehalem fleets and on a mixed fleet alternating the two specs, and
//! reports both paths plus their speedup.
//!
//! Besides the human-readable table (and the usual Criterion kernels), the
//! run dumps machine-readable numbers to `BENCH_resolver.json` at the
//! workspace root for trajectory tracking across PRs.  Passing `--smoke` (the
//! CI smoke step) shrinks the measurement budget to keep the run fast.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use hwsim::cache::resolve_cache_group;
use hwsim::contention::{EpochOutcome, PlacedDemand, StallBreakdown};
use hwsim::core::core_cycles;
use hwsim::counters::CounterSnapshot;
use hwsim::disk::resolve_disk;
use hwsim::membus::resolve_bus;
use hwsim::nic::resolve_nic;
use hwsim::{EpochResolver, MachineSpec, ResourceDemand, CACHE_LINE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fraction of memory references that are loads — must match the resolver.
const LOAD_FRACTION: f64 = 0.7;

/// Frozen copy of the pre-refactor allocating `resolve_epoch_with_duration`:
/// the baseline the reusable resolver is measured against.  (The same copy
/// backs the bit-identical equivalence proptest in
/// `crates/hwsim/tests/resolver_equivalence.rs`.)
fn allocating_resolve_epoch(
    spec: &MachineSpec,
    placements: &[PlacedDemand],
    epoch_seconds: f64,
) -> Vec<EpochOutcome> {
    if placements.is_empty() {
        return Vec::new();
    }

    let mut effective_mpki = vec![0.0_f64; placements.len()];
    for group in 0..spec.cache_groups() {
        let members: Vec<usize> = placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cache_group == group)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let demands: Vec<&ResourceDemand> =
            members.iter().map(|&i| &placements[i].demand).collect();
        let outcomes = resolve_cache_group(spec.shared_cache_mb, &demands);
        for (slot, outcome) in members.iter().zip(outcomes) {
            effective_mpki[*slot] = outcome.effective_mpki;
        }
    }

    let llc_misses: Vec<f64> = placements
        .iter()
        .zip(&effective_mpki)
        .map(|(p, &mpki)| mpki / 1_000.0 * p.demand.instructions)
        .collect();
    let ifetch_misses: Vec<f64> = placements
        .iter()
        .map(|p| p.demand.ifetch_mpki / 1_000.0 * p.demand.instructions)
        .collect();
    let bus_traffic_mb: f64 = llc_misses
        .iter()
        .zip(&ifetch_misses)
        .map(|(&d, &i)| (d + i) * CACHE_LINE_BYTES / (1024.0 * 1024.0))
        .sum();
    let bus = resolve_bus(spec.memory_bandwidth_mbps, bus_traffic_mb, epoch_seconds);

    let demand_refs: Vec<&ResourceDemand> = placements.iter().map(|p| &p.demand).collect();
    let disk = resolve_disk(
        spec.disk_seq_mbps,
        spec.disk_rand_mbps,
        &demand_refs,
        epoch_seconds,
    );
    let nic = resolve_nic(spec.nic_mbps, &demand_refs, epoch_seconds);

    placements
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let d = &p.demand;
            let core = core_cycles(d.instructions, d.base_cpi, d.branch_mpki);

            let llc_accesses = d.l1_mpki / 1_000.0 * d.instructions;
            let llc_miss = llc_misses[i];
            let llc_hit = (llc_accesses - llc_miss).max(0.0);

            let llc_hit_cycles = llc_hit * spec.shared_cache_hit_cycles;
            let llc_miss_cycles = llc_miss * spec.memory_latency_cycles;
            let bus_queue_cycles = llc_miss * spec.memory_latency_cycles * bus.queueing_overhead();

            let parallelism = d.parallelism.max(1.0).min(p.vcpus as f64);
            let to_seconds = |cycles: f64| cycles / (spec.clock_hz * parallelism);

            let breakdown = StallBreakdown {
                core_seconds: to_seconds(core.total()),
                llc_miss_seconds: to_seconds(llc_hit_cycles + llc_miss_cycles),
                bus_queue_seconds: to_seconds(bus_queue_cycles),
                disk_seconds: disk[i].stall_seconds,
                net_seconds: nic[i].stall_seconds,
            };

            let needed = breakdown.total();
            let achieved_fraction = if needed <= 0.0 {
                1.0
            } else {
                (epoch_seconds / needed).min(1.0)
            };

            let f = achieved_fraction;
            let inst_retired = d.instructions * f;
            let cpu_cycles =
                (core.total() + llc_hit_cycles + llc_miss_cycles + bus_queue_cycles) * f;
            let counters = CounterSnapshot {
                cpu_unhalted: cpu_cycles,
                inst_retired,
                l1d_repl: llc_accesses * f,
                l2_ifetch: d.ifetch_mpki / 1_000.0 * d.instructions * f,
                l2_lines_in: llc_miss * f,
                mem_load: d.mem_refs_per_instr * inst_retired * LOAD_FRACTION,
                resource_stalls: (llc_hit_cycles + llc_miss_cycles + bus_queue_cycles) * f,
                bus_tran_any: (llc_miss + ifetch_misses[i]) * f,
                bus_trans_ifetch: ifetch_misses[i] * f,
                bus_tran_brd: llc_miss * f,
                bus_req_out: llc_miss * spec.memory_latency_cycles * bus.latency_multiplier * f,
                br_miss_pred: d.branch_mpki / 1_000.0 * inst_retired,
                disk_stall_seconds: disk[i].stall_seconds
                    * f.min(disk[i].completed_fraction).clamp(0.0, 1.0),
                net_stall_seconds: nic[i].stall_seconds
                    * f.min(nic[i].completed_fraction).clamp(0.0, 1.0),
            };

            EpochOutcome {
                vm_id: p.vm_id,
                counters,
                achieved_fraction,
                demanded_instructions: d.instructions,
                breakdown,
            }
        })
        .collect()
}

/// Builds a realistic placement mix for one machine: cache-friendly servers,
/// cache-thrashing aggressors and I/O-heavy VMs, packed two per cache group.
fn make_placements(spec: &MachineSpec, vms: usize, seed: u64) -> Vec<PlacedDemand> {
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = spec.cache_groups().max(1);
    (0..vms)
        .map(|i| {
            let demand = match i % 3 {
                0 => ResourceDemand::builder()
                    .instructions(rng.gen_range(1.0e9..3.0e9))
                    .working_set_mb(rng.gen_range(2.0..10.0))
                    .l1_mpki(rng.gen_range(10.0..30.0))
                    .llc_mpki_solo(rng.gen_range(0.5..2.0))
                    .locality(0.6)
                    .parallelism(2.0)
                    .net_tx_mb(rng.gen_range(0.0..30.0))
                    .build(),
                1 => ResourceDemand::builder()
                    .instructions(rng.gen_range(1.0e9..4.0e9))
                    .working_set_mb(rng.gen_range(128.0..512.0))
                    .l1_mpki(rng.gen_range(30.0..60.0))
                    .llc_mpki_solo(rng.gen_range(10.0..35.0))
                    .locality(0.1)
                    .parallelism(2.0)
                    .build(),
                _ => ResourceDemand::builder()
                    .instructions(rng.gen_range(2.0e8..8.0e8))
                    .disk_read_mb(rng.gen_range(5.0..40.0))
                    .disk_seq_fraction(0.8)
                    .net_tx_mb(rng.gen_range(10.0..60.0))
                    .net_rx_mb(rng.gen_range(0.0..20.0))
                    .build(),
            };
            PlacedDemand::new(i as u64, demand, 2, (i / 2) % groups)
        })
        .collect()
}

/// One fleet configuration: a spec (and placements) per simulated machine.
struct Fleet {
    name: &'static str,
    machines: Vec<(MachineSpec, Vec<PlacedDemand>)>,
}

impl Fleet {
    fn build(name: &'static str, specs: &[MachineSpec], count: usize, vms: usize) -> Self {
        let machines = (0..count)
            .map(|m| {
                let spec = specs[m % specs.len()].clone();
                let placements = make_placements(&spec, vms, (vms * 1000 + m) as u64);
                (spec, placements)
            })
            .collect();
        Self { name, machines }
    }

    fn vms_per_epoch(&self) -> usize {
        self.machines.iter().map(|(_, p)| p.len()).sum()
    }
}

/// Runs `round` repeatedly for at least `budget`, returning VM resolutions
/// per second.  `round` resolves every machine in the fleet once.
fn measure_vms_per_sec<F: FnMut()>(vms_per_round: usize, budget: Duration, mut round: F) -> f64 {
    // Warm-up: grow scratch buffers and fault in code before timing.
    round();
    let start = Instant::now();
    let mut rounds = 0u64;
    while start.elapsed() < budget {
        round();
        rounds += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    vms_per_round as f64 * rounds as f64 / elapsed
}

struct Measurement {
    fleet: &'static str,
    vms_per_machine: usize,
    reused_vms_per_sec: f64,
    alloc_vms_per_sec: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.reused_vms_per_sec / self.alloc_vms_per_sec
    }
}

fn run_measurements(budget: Duration) -> Vec<Measurement> {
    let xeon = MachineSpec::xeon_x5472();
    let i7 = MachineSpec::core_i7_nehalem();
    let mut results = Vec::new();
    // 1 VM/machine is the solo-resolve shape of sandbox replay and synthetic
    // training; 4 is the Xeon's real capacity with 2-vCPU VMs; 16 and 64
    // stress the resolver past physical density.
    for vms in [1usize, 4, 16, 64] {
        let fleets = [
            Fleet::build("xeon_x5472", std::slice::from_ref(&xeon), 32, vms),
            Fleet::build("core_i7_nehalem", std::slice::from_ref(&i7), 32, vms),
            Fleet::build("mixed", &[xeon.clone(), i7.clone()], 32, vms),
        ];
        for fleet in fleets {
            let vms_per_round = fleet.vms_per_epoch();

            // Reused path: one resolver and one outcome buffer per machine,
            // exactly how `cloudsim::pm::PhysicalMachine` holds them.
            let mut resolvers: Vec<(EpochResolver, Vec<EpochOutcome>)> = fleet
                .machines
                .iter()
                .map(|(spec, _)| (EpochResolver::new(spec.clone()), Vec::new()))
                .collect();
            let reused = measure_vms_per_sec(vms_per_round, budget, || {
                for ((_, placements), (resolver, out)) in
                    fleet.machines.iter().zip(resolvers.iter_mut())
                {
                    resolver.resolve_into(placements, 1.0, out);
                    criterion::black_box(out);
                }
            });

            // Baseline: the pre-refactor allocating pipeline per call.
            let alloc = measure_vms_per_sec(vms_per_round, budget, || {
                for (spec, placements) in fleet.machines.iter() {
                    criterion::black_box(allocating_resolve_epoch(spec, placements, 1.0));
                }
            });

            results.push(Measurement {
                fleet: fleet.name,
                vms_per_machine: vms,
                reused_vms_per_sec: reused,
                alloc_vms_per_sec: alloc,
            });
        }
    }
    results
}

fn print_table(results: &[Measurement]) {
    println!("# Resolver throughput — reusable EpochResolver vs allocating resolve_epoch");
    println!("fleet,vms_per_machine,reused_vms_per_sec,alloc_vms_per_sec,speedup");
    for r in results {
        println!(
            "{},{},{:.0},{:.0},{:.2}",
            r.fleet,
            r.vms_per_machine,
            r.reused_vms_per_sec,
            r.alloc_vms_per_sec,
            r.speedup()
        );
    }
}

/// Dumps the measurements to `BENCH_resolver.json` at the workspace root so
/// successive PRs can track the trajectory of this hot path.  The runner's
/// `available_parallelism` is recorded per row (as in the cluster and
/// controller dumps) so single-core container numbers are never mistaken
/// for multi-core ones; `cargo run -p bench --bin check_bench_json`
/// validates the dump in CI.
fn dump_json(results: &[Measurement], smoke: bool) {
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"fleet\": \"{}\", \"vms_per_machine\": {}, \
                 \"reused_vms_per_sec\": {:.0}, \"alloc_vms_per_sec\": {:.0}, \
                 \"speedup\": {:.2}, \"available_parallelism\": {}}}",
                r.fleet,
                r.vms_per_machine,
                r.reused_vms_per_sec,
                r.alloc_vms_per_sec,
                r.speedup(),
                parallelism
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    bench::write_dump("resolver", smoke, &json);
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolver_throughput");
    group.sample_size(20);
    let spec = MachineSpec::xeon_x5472();
    let placements = make_placements(&spec, 16, 7);
    let mut resolver = EpochResolver::new(spec.clone());
    let mut out = Vec::new();
    group.bench_function("reused_xeon_16vms", |b| {
        b.iter(|| {
            resolver.resolve_into(&placements, 1.0, &mut out);
            out.len()
        })
    });
    group.bench_function("alloc_xeon_16vms", |b| {
        b.iter(|| allocating_resolve_epoch(&spec, &placements, 1.0).len())
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke {
        Duration::from_millis(10)
    } else {
        Duration::from_millis(300)
    };
    let results = run_measurements(budget);
    print_table(&results);
    // Smoke runs dump too (to the .smoke.json sibling): CI validates the
    // freshly written file with `cargo run -p bench --bin check_bench_json`,
    // so a bench that breaks its own dump fails the build instead of
    // silently corrupting the cross-PR trajectory.
    dump_json(&results, smoke);
    benches();
}
