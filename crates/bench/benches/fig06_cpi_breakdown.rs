//! Figure 6: breakdown of stalled cycles per instruction in production vs
//! isolation; the analyzer pinpoints the culprit resource in each scenario.

use bench::{fig6_cpi_breakdown, CloudWorkload, Fig6Scenario};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure() {
    println!("# Figure 6 — augmented CPI stack, isolation vs production");
    println!("workload,scenario,environment,core,l2_miss,fsb,net_disk,culprit");
    for workload in CloudWorkload::ALL {
        for scenario in Fig6Scenario::ALL {
            let cell = fig6_cpi_breakdown(workload, scenario, 7);
            for (env, stack) in [
                ("isolation", cell.isolation),
                ("production", cell.production),
            ] {
                println!(
                    "{},{},{},{:.3},{:.3},{:.3},{:.3},{}",
                    cell.workload,
                    cell.scenario,
                    env,
                    stack[0],
                    stack[1],
                    stack[2],
                    stack[3],
                    cell.culprit.map(|r| r.label()).unwrap_or("-")
                );
            }
        }
    }
}

fn bench_kernel(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig06");
    group.sample_size(10);
    group.bench_function("cpi_breakdown_one_cell", |b| {
        b.iter(|| fig6_cpi_breakdown(CloudWorkload::DataServing, Fig6Scenario::LastLevelCache, 7));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
