//! Figure 10: the synthetic benchmark clone suffers roughly the same
//! degradation as the real VM it mimics, across interference intensities.

use bench::{fig10_synthetic_accuracy, CloudWorkload};
use criterion::{criterion_group, criterion_main, Criterion};
use deepdive::synthetic::SyntheticBenchmark;
use hwsim::MachineSpec;

fn print_figure(benchmark: &SyntheticBenchmark) {
    println!("# Figure 10 — real VM vs synthetic clone degradation");
    println!(
        "workload,stress_intensity,real_degradation_pct,synthetic_degradation_pct,abs_error_pct"
    );
    let mut errors = Vec::new();
    for workload in CloudWorkload::ALL {
        for p in fig10_synthetic_accuracy(workload, benchmark, 13) {
            let err = (p.real_degradation - p.synthetic_degradation).abs();
            errors.push(err);
            println!(
                "{},{:.1},{:.1},{:.1},{:.1}",
                workload.name(),
                p.intensity,
                p.real_degradation * 100.0,
                p.synthetic_degradation * 100.0,
                err * 100.0
            );
        }
    }
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = errors[errors.len() / 2];
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    println!(
        "# median error {:.1}% (paper: 8%), mean error {:.1}% (paper: 10%)",
        median * 100.0,
        mean * 100.0
    );
}

fn bench_kernel(c: &mut Criterion) {
    let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 200, 7);
    print_figure(&benchmark);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("mimic_and_colocate_data_serving", |b| {
        b.iter(|| fig10_synthetic_accuracy(CloudWorkload::DataServing, &benchmark, 13));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
