//! Figure 8: detection rate and false-positive rate while replaying the
//! HotMail traces with injected interference episodes, per day and workload.

use bench::{fig8_detection, CloudWorkload};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure() {
    println!("# Figure 8 — detection and false-positive rates over three trace days");
    println!(
        "workload,day,detection_rate_pct,false_positive_rate_pct,episodes,analyzer_invocations"
    );
    for workload in CloudWorkload::ALL {
        let result = fig8_detection(workload, 21);
        for d in &result.days {
            println!(
                "{},{},{:.0},{:.0},{},{}",
                workload.name(),
                d.day + 1,
                d.detection_rate * 100.0,
                d.false_positive_rate * 100.0,
                d.episodes,
                d.invocations
            );
        }
        println!(
            "# {}: missed episodes = {}",
            workload.name(),
            result.missed_episodes
        );
    }
}

fn bench_kernel(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig08");
    group.sample_size(10);
    group.bench_function("three_day_detection_data_serving", |b| {
        b.iter(|| fig8_detection(CloudWorkload::DataServing, 21));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
