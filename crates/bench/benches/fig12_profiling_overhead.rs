//! Figure 12: DeepDive's accumulated profiling time stays low and flattens
//! after the first day, unlike baselines that re-profile on every
//! performance variation.

use bench::fig12_profiling_overhead;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure() {
    let r = fig12_profiling_overhead(21);
    println!("# Figure 12 — accumulated profiling time over 72 hours (minutes)");
    println!("hour,deepdive,baseline_20pct,baseline_10pct,baseline_5pct");
    for (i, hour) in r.hours.iter().enumerate() {
        println!(
            "{},{:.1},{:.1},{:.1},{:.1}",
            hour, r.deepdive[i], r.baseline_20[i], r.baseline_10[i], r.baseline_5[i]
        );
    }
    println!(
        "# totals after 72 h: DeepDive {:.1} min, Baseline-20% {:.1}, Baseline-10% {:.1}, Baseline-5% {:.1}",
        r.deepdive[71], r.baseline_20[71], r.baseline_10[71], r.baseline_5[71]
    );
}

fn bench_kernel(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("three_day_overhead_run", |b| {
        b.iter(|| fig12_profiling_overhead(21));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
