//! §5.5 memory-overhead check: the behaviour repository needs less than 5 KB
//! per VM per day even when the VM is analyzed every hour.

use bench::memory_overhead_bytes_per_vm_day;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    let bytes = memory_overhead_bytes_per_vm_day();
    println!("# §5.5 — repository footprint per VM per day");
    println!("analyses_per_day,bytes,under_5kb");
    println!("24,{},{}", bytes, (bytes < 5 * 1024) as u8);
}

fn bench_kernel(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("tab_memory_overhead");
    group.sample_size(10);
    group.bench_function("footprint_accounting", |b| {
        b.iter(memory_overhead_bytes_per_vm_day);
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
