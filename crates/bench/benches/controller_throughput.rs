//! Control-plane throughput: warning-path evaluations/sec through the
//! generation-checked, warm-started [`WarningSystem`] versus the pre-refactor
//! cold-refit baseline.
//!
//! The warning system is the paper's "cheap, always-on" first line (§4.1):
//! every VM is evaluated every epoch, and the per-application cluster models
//! must track a repository that keeps growing as behaviours are verified.
//! Before this refactor the controller called `refresh_model` once per VM
//! per epoch, every call cloned the application's entire behaviour store,
//! and any repository growth triggered a full 100-iteration EM fit from a
//! k-means++ start.  The rebuilt path refreshes once per application per
//! epoch, short-circuits in O(1) on an unchanged repository generation,
//! borrows the store instead of cloning it, and warm-starts refits from the
//! previous model (with a periodic cold refit bounding drift).
//!
//! The bench replays that exact contrast on 256- and 1024-VM fleets whose
//! repository gains one verified behaviour per epoch (so every epoch
//! invalidates one application's model): the *cold baseline* is a frozen
//! copy of the seed refresh/evaluate path, the *generation+warm* path is the
//! live `WarningSystem` driven the way the controller now drives it.  Both
//! include their refresh cost in the measured evaluations/sec.  A separate
//! measurement reports the per-refresh cost (µs) of warm-started vs cold
//! refits on a grown repository.
//!
//! A third section measures the **refit fan-out**: refits/sec through
//! [`WarningSystem::refresh_models`] when every application's repository
//! generation changed in the same epoch — the serial per-app loop versus
//! the same sweep scattered over a persistent [`WorkerPool`] (the way the
//! controller drives it when handed a pool).  The pooled sweep is
//! bit-identical to the serial one (pinned by
//! `tests/warning_equivalence.rs`), so these rows isolate pure scheduling
//! cost vs multi-core win.
//!
//! Results are printed as a table and dumped to `BENCH_controller.json` at
//! the workspace root (with `available_parallelism`, following the
//! `BENCH_cluster.json` caveat convention).  Fan-out rows claiming
//! `threads > 1` on a single-core runner carry `"overhead_only": true` —
//! `check_bench_json` enforces the flag.  `--smoke` (the CI step) shrinks
//! the measurement budget.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use analytics::constrained::{fit_constrained, ConstrainedModel};
use cloudsim::WorkerPool;
use criterion::{criterion_group, Criterion};
use deepdive::metrics::{BehaviorVector, DIMENSIONS};
use deepdive::repository::BehaviorRepository;
use deepdive::warning::{WarningConfig, WarningDecision, WarningSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::AppId;

/// Verified behaviours per application seeded before the measured run: deep
/// enough that the baseline's per-VM store clone is the realistic size of a
/// long-running cluster's history.
const SEED_HISTORY: usize = 200;

/// Repository capacity: large enough that the grown history never saturates
/// it (a saturated store freezes the baseline's length-based staleness check,
/// which would let the baseline skip refits it owes).
const REPOSITORY_CAPACITY: usize = 4096;

/// Frozen copy of the pre-refactor warning-system refresh/evaluate path (the
/// seed's `WarningSystem` + the controller's per-VM `refresh_model` call):
/// clones the application's behaviour store by value on every refresh,
/// re-extracts the labelled points, compares entry *counts* for staleness
/// and re-fits from scratch (100 EM iterations, k-means++ start) whenever
/// the repository grew.  This is the baseline the generation+warm-start
/// path is measured against.
struct ColdWarningSystem {
    config: WarningConfig,
    models: HashMap<u64, ConstrainedModel>,
    fitted_on: HashMap<u64, usize>,
}

impl ColdWarningSystem {
    fn new(config: WarningConfig) -> Self {
        Self {
            config,
            models: HashMap::new(),
            fitted_on: HashMap::new(),
        }
    }

    fn refresh_model(&mut self, app: AppId, repository: &BehaviorRepository) {
        // The pre-refactor `BehaviorRepository::behaviors` returned the
        // store by value; the clone is part of the measured baseline.
        let behaviors = repository.behaviors(app).clone();
        let n = behaviors.len();
        if n < self.config.min_behaviors_for_clustering {
            self.models.remove(&app.0);
            self.fitted_on.remove(&app.0);
            return;
        }
        if self.fitted_on.get(&app.0) == Some(&n) {
            return;
        }
        let model = fit_constrained(
            &behaviors.labelled(),
            self.config.clusters_per_app,
            self.config.sigma_multiplier,
            self.config.seed ^ app.0,
        );
        self.models.insert(app.0, model);
        self.fitted_on.insert(app.0, n);
    }

    fn evaluate(&self, app: AppId, behavior: &BehaviorVector) -> WarningDecision {
        let Some(model) = self.models.get(&app.0) else {
            return WarningDecision::Bootstrap;
        };
        // The seed path allocated a fresh Vec per evaluation.
        if model.accepts(&behavior.to_vec()) {
            return WarningDecision::NormalLocal;
        }
        WarningDecision::SuspectInterference
    }
}

/// Cluster center of an application in the metric space: distinct operating
/// points per app, all dimensions positive.
fn app_center(app: usize) -> [f64; DIMENSIONS] {
    let mut center = [0.0; DIMENSIONS];
    for (d, slot) in center.iter_mut().enumerate() {
        *slot = 0.8 + 0.37 * (app % 7) as f64 + 0.21 * d as f64;
    }
    center
}

/// A behaviour near (`spread` ≈ 0.01) or far (`spread` ≥ 4) from the app's
/// center.
fn behavior_near(app: usize, spread: f64, rng: &mut StdRng) -> BehaviorVector {
    let mut values = app_center(app);
    for v in values.iter_mut() {
        let factor = 1.0 + spread * rng.gen_range(-1.0..1.0);
        *v = (*v * factor).abs().max(1e-3);
    }
    BehaviorVector::from_vec(&values)
}

/// One fleet configuration plus everything a measured round consumes.
struct Workbench {
    apps: usize,
    /// Per-VM evaluation behaviours (VM `i` runs app `i % apps`); mostly
    /// inliers with a sprinkling of outliers so both decision branches run.
    stream: Vec<BehaviorVector>,
    /// Fresh behaviours fed to the repository, one per epoch, rotating
    /// through the apps.
    growth: Vec<BehaviorVector>,
}

impl Workbench {
    fn build(vms: usize, apps: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(vms as u64);
        let stream = (0..vms)
            .map(|i| {
                let spread = if i % 64 == 63 { 4.0 } else { 0.01 };
                behavior_near(i % apps, spread, &mut rng)
            })
            .collect();
        let growth = (0..1024)
            .map(|e| behavior_near(e % apps, 0.01, &mut rng))
            .collect();
        Self {
            apps,
            stream,
            growth,
        }
    }

    /// A freshly seeded repository: `SEED_HISTORY` verified normals plus two
    /// labelled interference points per application.
    fn repository(&self) -> BehaviorRepository {
        let mut repo = BehaviorRepository::with_capacity(REPOSITORY_CAPACITY);
        for app in 0..self.apps {
            let mut rng = StdRng::seed_from_u64(7919 * app as u64 + 1);
            for e in 0..SEED_HISTORY {
                repo.record_normal(
                    AppId(app as u64),
                    behavior_near(app, 0.01, &mut rng),
                    e as u64,
                );
            }
            for e in 0..2 {
                repo.record_interference(
                    AppId(app as u64),
                    behavior_near(app, 5.0, &mut rng),
                    (SEED_HISTORY + e) as u64,
                );
            }
        }
        repo
    }
}

/// Runs `epoch` once per round for at least `budget`; each round performs
/// one repository growth plus a full fleet sweep (refresh + `vms`
/// evaluations).  Returns evaluations/sec including the refresh cost.
fn measure_evals_per_sec<F: FnMut(u64)>(vms: usize, budget: Duration, mut epoch: F) -> f64 {
    epoch(0); // Warm-up: fit the initial models outside the timed window.
    let start = Instant::now();
    let mut rounds = 0u64;
    while start.elapsed() < budget {
        epoch(rounds + 1);
        rounds += 1;
    }
    vms as f64 * rounds as f64 / start.elapsed().as_secs_f64()
}

struct Measurement {
    vms: usize,
    apps: usize,
    path: &'static str,
    evals_per_sec: f64,
    speedup: f64,
}

fn run_measurements(budget: Duration) -> Vec<Measurement> {
    let mut results = Vec::new();
    for (vms, apps) in [(256usize, 8usize), (1024, 16)] {
        let bench = Workbench::build(vms, apps);

        // Generation + warm-start path, driven the way the controller now
        // drives it: one refresh per app per epoch, then the fleet sweep.
        let mut repo = bench.repository();
        let mut warm = WarningSystem::new(WarningConfig::default());
        let mut decisions = 0usize;
        let warm_rate = measure_evals_per_sec(vms, budget, |round| {
            let growth = &bench.growth[(round as usize) % bench.growth.len()];
            repo.record_normal(AppId(round % apps as u64), *growth, round);
            for app in 0..apps {
                warm.refresh_model(AppId(app as u64), &repo);
            }
            for (i, behavior) in bench.stream.iter().enumerate() {
                let d = warm.evaluate(AppId((i % apps) as u64), behavior, &[]);
                decisions += d.triggers_analyzer() as usize;
            }
        });
        criterion::black_box(decisions);

        // Cold baseline: per-VM refresh (store clone each call) + full
        // from-scratch refit whenever the repository grew.
        let mut repo = bench.repository();
        let mut cold = ColdWarningSystem::new(WarningConfig::default());
        let mut decisions = 0usize;
        let cold_rate = measure_evals_per_sec(vms, budget, |round| {
            let growth = &bench.growth[(round as usize) % bench.growth.len()];
            repo.record_normal(AppId(round % apps as u64), *growth, round);
            for (i, behavior) in bench.stream.iter().enumerate() {
                let app = AppId((i % apps) as u64);
                cold.refresh_model(app, &repo);
                let d = cold.evaluate(app, behavior);
                decisions += d.triggers_analyzer() as usize;
            }
        });
        criterion::black_box(decisions);

        results.push(Measurement {
            vms,
            apps,
            path: "generation_warm",
            evals_per_sec: warm_rate,
            speedup: warm_rate / cold_rate,
        });
        results.push(Measurement {
            vms,
            apps,
            path: "cold_baseline",
            evals_per_sec: cold_rate,
            speedup: 1.0,
        });
    }
    results
}

/// One refit fan-out measurement: the sweep discipline, its lane count and
/// the achieved refit rate.
struct SweepMeasurement {
    apps: usize,
    sweep: String,
    threads: usize,
    refits_per_sec: f64,
    speedup_vs_serial: f64,
}

/// Refits/sec through [`WarningSystem::refresh_models`] when **every**
/// application's repository generation changed in the same epoch — the
/// worst-case sweep the controller can face.  `pool: None` is the serial
/// per-app loop; `Some(pool)` scatters the fits over the pool's lanes and
/// installs the results in input order (bit-identical results either way).
fn measure_refit_sweep_per_sec(apps: usize, pool: Option<&WorkerPool>, budget: Duration) -> f64 {
    let bench = Workbench::build(apps * 16, apps);
    let mut repo = bench.repository();
    let ids: Vec<AppId> = (0..apps as u64).map(AppId).collect();
    let mut ws = WarningSystem::new(WarningConfig::default());
    ws.refresh_models(&ids, &repo, pool); // Warm-up: initial cold fits.
    let mut rng = StdRng::seed_from_u64(0xFA4);
    let mut epoch = (SEED_HISTORY + 2) as u64;
    let start = Instant::now();
    let mut rounds = 0u64;
    while start.elapsed() < budget {
        for &app in &ids {
            repo.record_normal(app, behavior_near(app.0 as usize, 0.01, &mut rng), epoch);
            epoch += 1;
        }
        ws.refresh_models(&ids, &repo, pool);
        rounds += 1;
    }
    apps as f64 * rounds as f64 / start.elapsed().as_secs_f64()
}

fn run_sweep_measurements(budget: Duration) -> Vec<SweepMeasurement> {
    const SWEEP_APPS: usize = 16;
    let serial = measure_refit_sweep_per_sec(SWEEP_APPS, None, budget);
    let pool = WorkerPool::for_threads(4);
    let pooled = measure_refit_sweep_per_sec(SWEEP_APPS, Some(&pool), budget);
    vec![
        SweepMeasurement {
            apps: SWEEP_APPS,
            sweep: "serial".to_string(),
            threads: 1,
            refits_per_sec: serial,
            speedup_vs_serial: 1.0,
        },
        SweepMeasurement {
            apps: SWEEP_APPS,
            sweep: format!("pooled-{}", pool.lanes()),
            threads: pool.lanes(),
            refits_per_sec: pooled,
            speedup_vs_serial: pooled / serial,
        },
    ]
}

/// Per-refresh cost in µs on a grown repository: every iteration records one
/// behaviour (invalidating the model) and refreshes.  `cold_refit_interval:
/// 1` forces the cold path through the same `WarningSystem` API.
fn measure_refresh_cost_us(cold_refit_interval: u64, budget: Duration) -> f64 {
    let bench = Workbench::build(64, 1);
    let mut repo = bench.repository();
    let mut ws = WarningSystem::new(WarningConfig {
        cold_refit_interval,
        ..Default::default()
    });
    ws.refresh_model(AppId(0), &repo);
    let start = Instant::now();
    let mut refreshes = 0u64;
    while start.elapsed() < budget {
        let growth = &bench.growth[(refreshes as usize) % bench.growth.len()];
        repo.record_normal(AppId(0), *growth, refreshes);
        ws.refresh_model(AppId(0), &repo);
        refreshes += 1;
    }
    start.elapsed().as_secs_f64() * 1.0e6 / refreshes as f64
}

fn print_table(results: &[Measurement], sweeps: &[SweepMeasurement], warm_us: f64, cold_us: f64) {
    println!("# Controller throughput — generation+warm-start warning path vs cold-refit baseline");
    println!("vms,apps,path,evals_per_sec,speedup_vs_cold");
    for r in results {
        println!(
            "{},{},{},{:.0},{:.2}",
            r.vms, r.apps, r.path, r.evals_per_sec, r.speedup
        );
    }
    println!(
        "# refresh cost on a grown repository ({SEED_HISTORY}+ entries): \
         warm-started {warm_us:.0} us, cold {cold_us:.0} us per refit"
    );
    println!("# refit fan-out (every app invalidated per epoch)");
    println!("apps,sweep,threads,refits_per_sec,speedup_vs_serial");
    for s in sweeps {
        println!(
            "{},{},{},{:.0},{:.2}",
            s.apps, s.sweep, s.threads, s.refits_per_sec, s.speedup_vs_serial
        );
    }
}

/// Dumps the measurements to `BENCH_controller.json` at the workspace root so
/// successive PRs can track the control-plane trajectory.
fn dump_json(
    results: &[Measurement],
    sweeps: &[SweepMeasurement],
    warm_us: f64,
    cold_us: f64,
    smoke: bool,
) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"vms\": {}, \"apps\": {}, \"path\": \"{}\", \
                 \"evals_per_sec\": {:.0}, \"speedup_vs_cold\": {:.2}, \
                 \"available_parallelism\": {}}}",
                r.vms, r.apps, r.path, r.evals_per_sec, r.speedup, cores
            )
        })
        .collect();
    for s in sweeps {
        // Same caveat convention as BENCH_cluster.json: a multi-lane sweep
        // on a single-core runner records coordination overhead, not
        // scaling, and must say so (check_bench_json enforces the flag).
        let overhead_only = s.threads > 1 && cores == 1;
        entries.push(format!(
            "  {{\"apps\": {}, \"sweep\": \"{}\", \"threads\": {}, \
             \"refits_per_sec\": {:.0}, \"speedup_vs_serial\": {:.2}, \
             \"available_parallelism\": {cores}, \"overhead_only\": {overhead_only}}}",
            s.apps, s.sweep, s.threads, s.refits_per_sec, s.speedup_vs_serial
        ));
    }
    entries.push(format!(
        "  {{\"refresh_warm_us\": {warm_us:.1}, \"refresh_cold_us\": {cold_us:.1}, \
         \"seed_history\": {SEED_HISTORY}, \"available_parallelism\": {cores}}}"
    ));
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    bench::write_dump("controller", smoke, &json);
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_throughput");
    group.sample_size(20);
    let bench = Workbench::build(256, 8);
    let repo = bench.repository();
    let mut ws = WarningSystem::new(WarningConfig::default());
    for app in 0..bench.apps {
        ws.refresh_model(AppId(app as u64), &repo);
    }
    group.bench_function("evaluate_256vms", |b| {
        b.iter(|| {
            let mut suspects = 0usize;
            for (i, behavior) in bench.stream.iter().enumerate() {
                let d = ws.evaluate(AppId((i % bench.apps) as u64), behavior, &[]);
                suspects += d.triggers_analyzer() as usize;
            }
            suspects
        })
    });
    group.bench_function("refresh_unchanged_generation_8apps", |b| {
        b.iter(|| {
            for app in 0..bench.apps {
                ws.refresh_model(AppId(app as u64), &repo);
            }
            ws.modeled_apps()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(400)
    };
    let results = run_measurements(budget);
    let sweeps = run_sweep_measurements(budget.min(Duration::from_millis(250)));
    let refresh_budget = budget.min(Duration::from_millis(150));
    let warm_us =
        measure_refresh_cost_us(WarningConfig::default().cold_refit_interval, refresh_budget);
    let cold_us = measure_refresh_cost_us(1, refresh_budget);
    print_table(&results, &sweeps, warm_us, cold_us);
    // Smoke runs dump too (to the .smoke.json sibling): CI validates the
    // freshly written file with `cargo run -p bench --bin check_bench_json`,
    // so a bench that breaks its own dump fails the build instead of
    // silently corrupting the cross-PR trajectory.
    dump_json(&results, &sweeps, warm_us, cold_us, smoke);
    benches();
}
