//! Figure 9: the analyzer's counter-based degradation estimate tracks the
//! client-reported degradation across interference intensities.

use bench::{fig9_degradation_accuracy, CloudWorkload};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure() {
    println!("# Figure 9 — client-reported vs analyzer-estimated degradation");
    println!("workload,stress_intensity,client_reported_pct,estimated_pct,abs_error_pct");
    let mut errors = Vec::new();
    for workload in CloudWorkload::ALL {
        for p in fig9_degradation_accuracy(workload, 11) {
            let err = (p.estimated - p.client_reported).abs();
            errors.push(err);
            println!(
                "{},{:.1},{:.1},{:.1},{:.1}",
                workload.name(),
                p.intensity,
                p.client_reported * 100.0,
                p.estimated * 100.0,
                err * 100.0
            );
        }
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let worst = errors.iter().cloned().fold(0.0, f64::max);
    println!(
        "# mean absolute error {:.1}% (paper: <5%), worst {:.1}% (paper: <10%)",
        mean * 100.0,
        worst * 100.0
    );
}

fn bench_kernel(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig09");
    group.sample_size(10);
    group.bench_function("accuracy_sweep_data_serving", |b| {
        b.iter(|| fig9_degradation_accuracy(CloudWorkload::DataServing, 11));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
