//! Figure 1: measured performance of a service under a fixed workload whose
//! performance periodically collapses due to co-located VMs.
//!
//! Prints the hourly throughput/latency series (the paper's Fig. 1 shape) and
//! benchmarks the per-hour simulation step.

use bench::{fig1_ec2_motivation, victim_cluster, CloudWorkload};
use cloudsim::{ClusterSeed, EpochEngine};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure() {
    let points = fig1_ec2_motivation(1);
    println!("# Figure 1 — Cassandra-like service on a shared machine (3 days)");
    println!("hour,throughput_req_per_s,avg_latency_ms,interference_active");
    for p in &points {
        println!(
            "{},{:.1},{:.2},{}",
            p.hour, p.throughput_rps, p.latency_ms, p.interference_active as u8
        );
    }
    let quiet: Vec<_> = points.iter().filter(|p| !p.interference_active).collect();
    let noisy: Vec<_> = points.iter().filter(|p| p.interference_active).collect();
    let mean = |v: &Vec<&bench::Fig1Point>, f: fn(&bench::Fig1Point) -> f64| {
        v.iter().map(|p| f(p)).sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "# summary: quiet latency {:.2} ms vs interference latency {:.2} ms",
        mean(&quiet, |p| p.latency_ms),
        mean(&noisy, |p| p.latency_ms)
    );
}

fn bench_kernel(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig01");
    group.sample_size(10);
    group.bench_function("epoch_step_single_vm", |b| {
        let mut cluster = victim_cluster(CloudWorkload::DataServing, 1);
        let engine = EpochEngine::serial(ClusterSeed::new(1));
        b.iter(|| engine.step(&mut cluster, |_| 0.7));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
