//! Figure 4: normalized metric values cluster separately with and without
//! interference for Data Serving, Web Search and Data Analytics.

use bench::{fig4_metric_clusters, CloudWorkload};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure() {
    println!("# Figure 4 — metric-space clusters (L1 / L2 / memory-stall, per kilo-instruction)");
    for workload in CloudWorkload::ALL {
        let clusters = fig4_metric_clusters(workload, 3);
        println!(
            "## {} (separation score {:.2})",
            workload.name(),
            clusters.separation_score
        );
        println!("setting,l1_pki,llc_pki,stall_pki,interference");
        for p in &clusters.points {
            println!(
                "{},{:.3},{:.3},{:.3},{}",
                p.setting, p.coords[0], p.coords[1], p.coords[2], p.interference as u8
            );
        }
    }
}

fn bench_kernel(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig04");
    group.sample_size(10);
    group.bench_function("cluster_experiment_data_serving", |b| {
        b.iter(|| fig4_metric_clusters(CloudWorkload::DataServing, 3));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
