//! Figure 5: observing many VMs running the same Data Analytics workload
//! lets DeepDive tell which machines suffer network interference.

use bench::fig5_global_information;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure() {
    let points = fig5_global_information(3, 5);
    println!("# Figure 5 — Data Analytics on nine PMs, iperf on three of them");
    println!("pm,interfered,net_stall_s_per_gi,cpi");
    for p in &points {
        println!(
            "{},{},{:.3},{:.3}",
            p.pm, p.interfered as u8, p.net_stalls, p.cpi
        );
    }
}

fn bench_kernel(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig05");
    group.sample_size(10);
    group.bench_function("nine_pm_analytics_cycle", |b| {
        b.iter(|| fig5_global_information(3, 5));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
