//! Figure 11: the placement manager predicts interference on candidate
//! destination machines with the synthetic benchmark and picks the best one
//! without performing any real migration.

use bench::fig11_placement_robustness;
use criterion::{criterion_group, criterion_main, Criterion};
use deepdive::synthetic::SyntheticBenchmark;
use hwsim::MachineSpec;

fn print_figure(benchmark: &SyntheticBenchmark) {
    let r = fig11_placement_robustness(benchmark, 17);
    println!("# Figure 11 — interference at the chosen destination vs best/average/worst");
    println!("placement,real_interference_pct");
    println!("deepdive_choice,{:.1}", r.deepdive_choice * 100.0);
    println!("best,{:.1}", r.best * 100.0);
    println!("average,{:.1}", r.average * 100.0);
    println!("worst,{:.1}", r.worst * 100.0);
    println!("# chosen destination: {:?}", r.chosen_pm);
}

fn bench_kernel(c: &mut Criterion) {
    let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 200, 7);
    print_figure(&benchmark);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("placement_prediction", |b| {
        b.iter(|| fig11_placement_robustness(&benchmark, 17));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
