//! Figure 7: the Core i7 / NUMA port still separates interference from
//! normal behaviour (QPI / L3 / overall-CPI axes).

use bench::fig7_i7_port;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure() {
    let clusters = fig7_i7_port(9);
    println!("# Figure 7 — Data Serving on the Core i7 (Nehalem) server");
    println!("# separation score {:.2}", clusters.separation_score);
    println!("setting,cpi,l3_pki,qpi_outstanding_pki,interference");
    for p in &clusters.points {
        println!(
            "{},{:.3},{:.3},{:.3},{}",
            p.setting, p.coords[0], p.coords[1], p.coords[2], p.interference as u8
        );
    }
}

fn bench_kernel(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig07");
    group.sample_size(10);
    group.bench_function("i7_cluster_experiment", |b| {
        b.iter(|| fig7_i7_port(9));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
