//! # bench — experiment harness regenerating every figure of the paper
//!
//! Each figure or table of DeepDive's evaluation has a corresponding bench
//! target under `benches/` that (a) re-runs the experiment on the simulated
//! substrate and prints the same series/rows the paper reports, and (b)
//! feeds a representative kernel of that experiment to Criterion so `cargo
//! bench` also produces timing numbers.
//!
//! The heavy lifting lives here, in plain library code, so integration tests
//! can assert the *qualitative* claims (who wins, what is detected, which
//! resource is blamed) without going through Criterion:
//!
//! * [`setup`] — builders for the victim/aggressor VMs and clusters used
//!   across experiments.
//! * [`figures`] — one function per figure, returning printable data.

pub mod figures;
pub mod setup;

pub use figures::*;
pub use setup::*;
