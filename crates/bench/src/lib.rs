#![forbid(unsafe_code)]
//! # bench — experiment harness regenerating every figure of the paper
//!
//! Each figure or table of DeepDive's evaluation has a corresponding bench
//! target under `benches/` that (a) re-runs the experiment on the simulated
//! substrate and prints the same series/rows the paper reports, and (b)
//! feeds a representative kernel of that experiment to Criterion so `cargo
//! bench` also produces timing numbers.
//!
//! The heavy lifting lives here, in plain library code, so integration tests
//! can assert the *qualitative* claims (who wins, what is detected, which
//! resource is blamed) without going through Criterion:
//!
//! * [`setup`] — builders for the victim/aggressor VMs and clusters used
//!   across experiments.
//! * [`figures`] — one function per figure, returning printable data.
//!
//! The three throughput benches (`resolver_throughput`,
//! `cluster_throughput`, `controller_throughput`) additionally dump
//! machine-readable JSON at the workspace root via [`dump_path`], validated
//! in CI by the `check_bench_json` bin.

pub mod figures;
pub mod setup;

pub use figures::*;
pub use setup::*;

/// Where a throughput bench dumps its JSON measurements: full-budget runs
/// write the committed `BENCH_<name>.json` trajectory file at the workspace
/// root, while `--smoke` runs write a gitignored `BENCH_<name>.smoke.json`
/// sibling so short-budget CI numbers never overwrite the committed
/// full-budget files.  CI's "Validate bench JSON dumps" step checks both;
/// changing this policy here changes it for every bench at once.
pub fn dump_path(name: &str, smoke: bool) -> String {
    let suffix = if smoke { ".smoke.json" } else { ".json" };
    format!("{}/../../BENCH_{name}{suffix}", env!("CARGO_MANIFEST_DIR"))
}

/// Writes a throughput bench's JSON dump to [`dump_path`] and reports the
/// destination on stdout (`# wrote <path>`), or the failure on stderr —
/// the one write/report policy shared by all three benches.
pub fn write_dump(name: &str, smoke: bool, json: &str) {
    let path = dump_path(name, smoke);
    match std::fs::write(&path, json) {
        Ok(()) => {
            let shown = std::fs::canonicalize(&path)
                .map(|p| p.display().to_string())
                .unwrap_or_else(|_| path.clone());
            println!("# wrote {shown}");
        }
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
