//! Shared scenario builders for the evaluation experiments.
//!
//! The paper's testbed pairs each cloud workload with the stress workload
//! that pressures the resource it depends on (§5.3): memory-stress with Data
//! Serving, network-stress with Data Analytics, and disk-stress with Web
//! Search.  These helpers build the corresponding VMs and clusters so every
//! figure's bench starts from the same, paper-faithful configuration.

use cloudsim::{Cluster, PmId, Scheduler, Vm, VmId};
use hwsim::MachineSpec;
use workloads::{
    AppId, ClientEmulator, DataAnalytics, DataServing, DiskStress, MemoryStress, NetworkStress,
    WebSearch, Workload,
};

/// The three cloud workloads of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudWorkload {
    /// Cassandra/YCSB (Data Serving).
    DataServing,
    /// Nutch/Faban (Web Search).
    WebSearch,
    /// Hadoop/Mahout (Data Analytics).
    DataAnalytics,
}

impl CloudWorkload {
    /// All three, in the paper's order.
    pub const ALL: [CloudWorkload; 3] = [
        CloudWorkload::DataServing,
        CloudWorkload::WebSearch,
        CloudWorkload::DataAnalytics,
    ];

    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            CloudWorkload::DataServing => "Data Serving",
            CloudWorkload::WebSearch => "Web Search",
            CloudWorkload::DataAnalytics => "Data Analytics",
        }
    }

    /// Application identity used for this workload's VMs.
    pub fn app_id(&self) -> AppId {
        match self {
            CloudWorkload::DataServing => AppId(1),
            CloudWorkload::WebSearch => AppId(2),
            CloudWorkload::DataAnalytics => AppId(3),
        }
    }

    /// Builds the workload generator for one VM.
    pub fn workload(&self) -> Box<dyn Workload> {
        match self {
            CloudWorkload::DataServing => Box::new(DataServing::with_defaults(self.app_id())),
            CloudWorkload::WebSearch => Box::new(WebSearch::with_defaults(self.app_id())),
            CloudWorkload::DataAnalytics => Box::new(DataAnalytics::worker(self.app_id())),
        }
    }

    /// Client emulator matching the workload's peak rate and base latency.
    pub fn client(&self) -> ClientEmulator {
        match self {
            CloudWorkload::DataServing => ClientEmulator::new(8_000.0, 4.0),
            CloudWorkload::WebSearch => ClientEmulator::new(1_200.0, 25.0),
            CloudWorkload::DataAnalytics => ClientEmulator::new(40.0, 400.0),
        }
    }

    /// Builds a victim VM running this workload.
    pub fn victim_vm(&self, id: u64) -> Vm {
        Vm::new(VmId(id), self.workload(), self.client())
    }

    /// The stress workload the paper co-locates with this victim (§5.3).
    pub fn paired_stress(&self) -> StressKind {
        match self {
            CloudWorkload::DataServing => StressKind::Memory,
            CloudWorkload::WebSearch => StressKind::Disk,
            CloudWorkload::DataAnalytics => StressKind::Network,
        }
    }
}

/// The three interfering workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StressKind {
    /// Bubble-Up-style memory/cache aggressor.
    Memory,
    /// iperf-style bidirectional UDP streams.
    Network,
    /// Rate-limited file copy.
    Disk,
}

impl StressKind {
    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            StressKind::Memory => "memory-stress",
            StressKind::Network => "network-stress",
            StressKind::Disk => "disk-stress",
        }
    }

    /// Builds a stress VM at the given intensity in `[0, 1]`, mapped onto the
    /// paper's parameter sweeps: 6–512 MB working set, 50–700 Mbps, or
    /// 1–10 MB/s respectively.
    pub fn vm(&self, id: u64, intensity: f64) -> Vm {
        let intensity = intensity.clamp(0.0, 1.0);
        let workload: Box<dyn Workload> = match self {
            StressKind::Memory => Box::new(MemoryStress::new(
                AppId(900),
                6.0 + intensity * (512.0 - 6.0),
            )),
            StressKind::Network => Box::new(NetworkStress::new(
                AppId(901),
                50.0 + intensity * (700.0 - 50.0),
            )),
            StressKind::Disk => Box::new(DiskStress::new(AppId(902), 1.0 + intensity * 9.0)),
        };
        Vm::new(VmId(id), workload, ClientEmulator::new(1.0, 1.0))
    }
}

/// A cluster of `n` Xeon X5472 machines with the default (packed) scheduler.
pub fn xeon_cluster(n: usize) -> Cluster {
    Cluster::homogeneous(n, MachineSpec::xeon_x5472(), Scheduler::default())
}

/// A cluster of `n` Core i7 machines (the §4.4 portability platform).
pub fn i7_cluster(n: usize) -> Cluster {
    Cluster::homogeneous(n, MachineSpec::core_i7_nehalem(), Scheduler::default())
}

/// Places a victim running `workload` on machine 0 of a fresh Xeon cluster
/// with `machines` machines and returns the cluster.
pub fn victim_cluster(workload: CloudWorkload, machines: usize) -> Cluster {
    let mut cluster = xeon_cluster(machines);
    cluster
        .place_on(PmId(0), workload.victim_vm(1))
        .expect("empty machine admits the victim");
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_a_victim_vm() {
        for (i, w) in CloudWorkload::ALL.iter().enumerate() {
            let vm = w.victim_vm(i as u64);
            assert_eq!(vm.vcpus, 2);
            assert_eq!(vm.app_id(), w.app_id());
        }
    }

    #[test]
    fn stress_pairing_matches_the_paper() {
        assert_eq!(
            CloudWorkload::DataServing.paired_stress(),
            StressKind::Memory
        );
        assert_eq!(CloudWorkload::WebSearch.paired_stress(), StressKind::Disk);
        assert_eq!(
            CloudWorkload::DataAnalytics.paired_stress(),
            StressKind::Network
        );
    }

    #[test]
    fn stress_intensity_maps_to_paper_ranges() {
        // The endpoints of the sweeps must match §5.3.
        let mild = StressKind::Memory.vm(1, 0.0);
        let harsh = StressKind::Memory.vm(2, 1.0);
        assert!(format!("{mild:?}").contains("memory-stress"));
        assert!(format!("{harsh:?}").contains("memory-stress"));
    }

    #[test]
    fn victim_cluster_places_one_vm_on_machine_zero() {
        let cluster = victim_cluster(CloudWorkload::WebSearch, 3);
        assert_eq!(cluster.vm_count(), 1);
        assert_eq!(cluster.locate(VmId(1)), Some(PmId(0)));
    }
}
