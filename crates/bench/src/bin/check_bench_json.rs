//! CI validator for the throughput-bench JSON dumps.
//!
//! The four throughput benches (`resolver_throughput`, `cluster_throughput`,
//! `controller_throughput`, `datacenter_throughput`) dump machine-readable
//! measurements to `BENCH_resolver.json`, `BENCH_cluster.json`,
//! `BENCH_controller.json` and `BENCH_datacenter.json`
//! at the workspace root so successive PRs can track the hot paths'
//! trajectories (`--smoke` runs write `BENCH_*.smoke.json` siblings instead,
//! so short-budget CI numbers never overwrite the committed full-budget
//! files).  A bench that silently dumps an empty array, a non-finite rate or
//! a row missing its keys would corrupt that trajectory without failing
//! anything — so CI runs this checker right after the four smoke steps,
//! over both the fresh smoke dumps and the committed files, and fails on
//! any malformed dump.
//!
//! Checked per file:
//!
//! * the document parses as a **non-empty array of objects**,
//! * every row carries its **required keys** (schema dispatched per file),
//! * every rate/ratio is a **finite, strictly positive** number,
//! * the runner's **`available_parallelism` is recorded** (≥ 1) on every
//!   row, so single-core container numbers are never mistaken for scaling
//!   data,
//! * any row claiming `threads > 1` while `available_parallelism` is 1
//!   carries **`"overhead_only": true`** — a multi-threaded measurement on
//!   a single-core runner records coordination overhead, not scaling, and
//!   the row itself must say so.
//!
//! Usage: `cargo run -p bench --bin check_bench_json [FILES...]` — with no
//! arguments it validates the four dumps at the workspace root.  Exits
//! nonzero listing every violation found.  `--help` prints the per-file
//! schema (every required key per row shape); the same reference lives in
//! `crates/bench/README.md`.

use serde::Value;

/// Schema reference printed by `--help`; kept in sync with `validate` and
/// mirrored (with prose) in `crates/bench/README.md`.
const HELP: &str = "\
check_bench_json — CI validator for the BENCH_*.json throughput dumps.

Usage: cargo run -p bench --bin check_bench_json [FILES...]
       (no arguments: validates the four dumps at the workspace root)

Every dump is a non-empty JSON array of objects.  Every row records the
runner's `available_parallelism` (>= 1), and any row with `threads` > 1 on
a single-core runner must carry `\"overhead_only\": true`.  Rates and sizes
must be finite and strictly positive unless noted.

BENCH_resolver.json — contention-resolver microbench, one row per fleet:
  fleet (string), vms_per_machine, reused_vms_per_sec, alloc_vms_per_sec,
  speedup, available_parallelism

BENCH_cluster.json — epoch-stepping matrix plus a churn probe:
  throughput rows: mode (string: serial/sharded-N/pooled-N), machines, vms,
    threads, epochs_per_sec, speedup_vs_serial, available_parallelism
  churn probe row: migration_churn_per_sec, available_parallelism

BENCH_controller.json — DeepDive controller paths:
  warning-path rows: path (string), vms, apps, evals_per_sec,
    speedup_vs_cold, available_parallelism
  refit-sweep rows: sweep (string), apps, threads, refits_per_sec,
    speedup_vs_serial, available_parallelism
  refresh probe row: refresh_warm_us, refresh_cold_us,
    available_parallelism

BENCH_datacenter.json — rows dispatched on \"kind\":
  kind=engine: mode (dense/sparse/dense-advance/sparse-advance/
    sparse-pooled; the dump must pair dense and sparse rows), machines,
    vms, activity (fraction in (0,1]), threads, epochs_per_sec,
    vm_epochs_per_sec, speedup_vs_dense, available_parallelism; advance
    rows may add speedup_vs_dense_sweep
  kind=service: preset (string), machines, epochs_per_sec,
    vm_epochs_per_sec, vm_arrivals_per_sec, peak_resident,
    available_parallelism
  kind=fault: scenario (disabled/light/rack/domain/drain; the dump must
    carry a disabled row — the idle-overhead baseline), machines,
    blast_radius (machines felled per fault event: 1, rack or domain
    size), epochs_per_sec, available_parallelism; availability_pct in
    (0, 100]; overhead_pct finite (negative = noise); finite and >= 0:
    evacuation_latency_epochs, crashes, evacuations, drain_migrations,
    abandonments
";

/// The dumps validated by default, relative to the workspace root.
const DEFAULT_FILES: [&str; 4] = [
    "BENCH_resolver.json",
    "BENCH_cluster.json",
    "BENCH_controller.json",
    "BENCH_datacenter.json",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let files: Vec<String> = if args.is_empty() {
        DEFAULT_FILES
            .iter()
            .map(|f| format!("{root}/{f}"))
            .collect()
    } else {
        args
    };

    let mut failures = 0usize;
    for file in &files {
        let errors = check_file(file);
        if errors.is_empty() {
            println!("OK   {file}");
        } else {
            failures += errors.len();
            eprintln!("FAIL {file}");
            for error in errors {
                eprintln!("  - {error}");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} violation(s) across {} file(s)", files.len());
        std::process::exit(1);
    }
}

/// Reads, parses and validates one dump; returns every violation found.
fn check_file(path: &str) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return vec![format!("cannot read: {e}")],
    };
    let value: Value = match serde_json::from_str(&text) {
        Ok(value) => value,
        Err(e) => return vec![format!("invalid JSON: {e}")],
    };
    let schema = match schema_for(path) {
        Some(schema) => schema,
        None => {
            return vec![format!(
                "unknown dump (expected a path containing one of: \
                 resolver, cluster, controller, datacenter)"
            )]
        }
    };
    validate(&value, schema)
}

/// Which per-row rules apply to a dump, dispatched on the file name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schema {
    Resolver,
    Cluster,
    Controller,
    Datacenter,
}

fn schema_for(path: &str) -> Option<Schema> {
    let name = path.rsplit('/').next().unwrap_or(path);
    if name.contains("resolver") {
        Some(Schema::Resolver)
    } else if name.contains("datacenter") {
        Some(Schema::Datacenter)
    } else if name.contains("cluster") {
        Some(Schema::Cluster)
    } else if name.contains("controller") {
        Some(Schema::Controller)
    } else {
        None
    }
}

/// Validates a parsed dump against its schema.
fn validate(doc: &Value, schema: Schema) -> Vec<String> {
    let mut errors = Vec::new();
    let rows = match doc.as_array() {
        Ok(rows) => rows,
        Err(_) => return vec![format!("document is {}, expected an array", doc.kind())],
    };
    if rows.is_empty() {
        return vec!["document is an empty array".to_string()];
    }
    // Rows that carry the schema's main measurement (e.g. a throughput row
    // rather than an auxiliary probe); every schema requires at least one.
    let mut measurement_rows = 0usize;
    // Engine modes seen in a datacenter dump — the dump must pair a dense
    // baseline with at least one sparse measurement to be a comparison.
    let mut saw_dense = false;
    let mut saw_sparse = false;
    // A datacenter dump must also carry the disabled-plane fault row: the
    // standing proof that the fault layer is (near-)free when unused.
    let mut saw_disabled_fault = false;
    for (i, row) in rows.iter().enumerate() {
        if row.as_object().is_err() {
            errors.push(format!("row {i}: is {}, expected an object", row.kind()));
            continue;
        }
        match schema {
            Schema::Resolver => {
                measurement_rows += 1;
                if !matches!(row.get("fleet"), Some(Value::Str(_))) {
                    errors.push(format!("row {i}: missing string \"fleet\""));
                }
                require_positive(
                    row,
                    i,
                    &mut errors,
                    &[
                        "vms_per_machine",
                        "reused_vms_per_sec",
                        "alloc_vms_per_sec",
                        "speedup",
                        "available_parallelism",
                    ],
                );
            }
            Schema::Cluster => {
                if row.get("mode").is_some() {
                    // A throughput row of the serial/sharded/pooled matrix.
                    measurement_rows += 1;
                    if !matches!(row.get("mode"), Some(Value::Str(_))) {
                        errors.push(format!("row {i}: \"mode\" must be a string"));
                    }
                    require_positive(
                        row,
                        i,
                        &mut errors,
                        &[
                            "machines",
                            "vms",
                            "threads",
                            "epochs_per_sec",
                            "speedup_vs_serial",
                            "available_parallelism",
                        ],
                    );
                } else {
                    // The migration-churn probe.
                    require_positive(
                        row,
                        i,
                        &mut errors,
                        &["migration_churn_per_sec", "available_parallelism"],
                    );
                }
            }
            Schema::Controller => {
                if row.get("path").is_some() {
                    // A warm-vs-cold warning-path throughput row.
                    measurement_rows += 1;
                    if !matches!(row.get("path"), Some(Value::Str(_))) {
                        errors.push(format!("row {i}: \"path\" must be a string"));
                    }
                    require_positive(
                        row,
                        i,
                        &mut errors,
                        &[
                            "vms",
                            "apps",
                            "evals_per_sec",
                            "speedup_vs_cold",
                            "available_parallelism",
                        ],
                    );
                } else if row.get("sweep").is_some() {
                    // A refit fan-out row (serial vs pooled refresh sweep).
                    measurement_rows += 1;
                    if !matches!(row.get("sweep"), Some(Value::Str(_))) {
                        errors.push(format!("row {i}: \"sweep\" must be a string"));
                    }
                    require_positive(
                        row,
                        i,
                        &mut errors,
                        &[
                            "apps",
                            "threads",
                            "refits_per_sec",
                            "speedup_vs_serial",
                            "available_parallelism",
                        ],
                    );
                } else {
                    // The refresh-cost probe.
                    require_positive(
                        row,
                        i,
                        &mut errors,
                        &[
                            "refresh_warm_us",
                            "refresh_cold_us",
                            "available_parallelism",
                        ],
                    );
                }
            }
            Schema::Datacenter => match row.get("kind") {
                Some(Value::Str(kind)) if kind == "engine" => {
                    // A dense/sparse engine-throughput row.
                    measurement_rows += 1;
                    const MODES: [&str; 5] = [
                        "dense",
                        "sparse",
                        "dense-advance",
                        "sparse-advance",
                        "sparse-pooled",
                    ];
                    match row.get("mode") {
                        Some(Value::Str(mode)) if MODES.contains(&mode.as_str()) => {
                            saw_dense |= mode.starts_with("dense");
                            saw_sparse |= mode.starts_with("sparse");
                        }
                        Some(Value::Str(mode)) => errors.push(format!(
                            "row {i}: unknown engine \"mode\" {mode:?} (expected one of {MODES:?})"
                        )),
                        _ => errors.push(format!("row {i}: missing string \"mode\"")),
                    }
                    require_positive(
                        row,
                        i,
                        &mut errors,
                        &[
                            "machines",
                            "vms",
                            "activity",
                            "threads",
                            "epochs_per_sec",
                            "vm_epochs_per_sec",
                            "speedup_vs_dense",
                            "available_parallelism",
                        ],
                    );
                    // Activity is the fraction of busy machines; the
                    // sweep-relative speedup is dumped only on advance rows.
                    if row
                        .get("activity")
                        .and_then(number)
                        .is_some_and(|a| a > 1.0)
                    {
                        errors.push(format!(
                            "row {i}: \"activity\" must be a fraction in (0, 1]"
                        ));
                    }
                    if let Some(v) = row.get("speedup_vs_dense_sweep") {
                        match number(v) {
                            Some(x) if x.is_finite() && x > 0.0 => {}
                            _ => errors.push(format!(
                                "row {i}: \"speedup_vs_dense_sweep\" must be finite and nonzero"
                            )),
                        }
                    }
                }
                Some(Value::Str(kind)) if kind == "service" => {
                    // An event-driven service (arrive/live/depart) row.
                    measurement_rows += 1;
                    if !matches!(row.get("preset"), Some(Value::Str(_))) {
                        errors.push(format!("row {i}: missing string \"preset\""));
                    }
                    require_positive(
                        row,
                        i,
                        &mut errors,
                        &[
                            "machines",
                            "epochs_per_sec",
                            "vm_epochs_per_sec",
                            "vm_arrivals_per_sec",
                            "peak_resident",
                            "available_parallelism",
                        ],
                    );
                }
                Some(Value::Str(kind)) if kind == "fault" => {
                    // A fault-plane row: overhead and availability of one
                    // scenario against the fault-free baseline.  The
                    // scenarios sweep blast radius (single machine → rack →
                    // power domain) plus the graceful-drain alternative.
                    measurement_rows += 1;
                    const SCENARIOS: [&str; 5] = ["disabled", "light", "rack", "domain", "drain"];
                    match row.get("scenario") {
                        Some(Value::Str(scenario)) if SCENARIOS.contains(&scenario.as_str()) => {
                            saw_disabled_fault |= scenario == "disabled";
                        }
                        Some(Value::Str(scenario)) => errors.push(format!(
                            "row {i}: unknown fault \"scenario\" {scenario:?} \
                             (expected one of {SCENARIOS:?})"
                        )),
                        _ => errors.push(format!("row {i}: missing string \"scenario\"")),
                    }
                    require_positive(
                        row,
                        i,
                        &mut errors,
                        &[
                            "machines",
                            "blast_radius",
                            "epochs_per_sec",
                            "available_parallelism",
                        ],
                    );
                    // Availability is a percentage of machine-epochs; 100
                    // exactly is the disabled-plane case, so positive alone
                    // is not enough and zero is a broken dump.
                    match row.get("availability_pct").and_then(number) {
                        Some(x) if x.is_finite() && x > 0.0 && x <= 100.0 => {}
                        Some(x) => errors.push(format!(
                            "row {i}: \"availability_pct\" must be in (0, 100], got {x}"
                        )),
                        None => {
                            errors.push(format!("row {i}: missing numeric \"availability_pct\""))
                        }
                    }
                    // Overhead may legitimately measure negative (noise) and
                    // latency/counters may be exactly zero — finite (and for
                    // the latter, non-negative) is the contract.
                    require_finite(row, i, &mut errors, &["overhead_pct"]);
                    require_finite_nonneg(
                        row,
                        i,
                        &mut errors,
                        &[
                            "evacuation_latency_epochs",
                            "crashes",
                            "evacuations",
                            "drain_migrations",
                            "abandonments",
                        ],
                    );
                }
                Some(Value::Str(kind)) => {
                    errors.push(format!(
                        "row {i}: unknown \"kind\" {kind:?} \
                         (expected \"engine\", \"service\" or \"fault\")"
                    ));
                }
                _ => errors.push(format!("row {i}: missing string \"kind\"")),
            },
        }
        require_overhead_flag(row, i, &mut errors);
    }
    if measurement_rows == 0 {
        errors.push("no measurement rows found".to_string());
    }
    if schema == Schema::Datacenter && !(saw_dense && saw_sparse) {
        errors.push(
            "datacenter dump must pair dense and sparse engine rows \
             (found no such pair)"
                .to_string(),
        );
    }
    if schema == Schema::Datacenter && !saw_disabled_fault {
        errors.push(
            "datacenter dump must carry a \"disabled\" fault row \
             (the idle-overhead baseline of the fault plane)"
                .to_string(),
        );
    }
    errors
}

/// Schema-independent rule: a row measured with more threads than the
/// runner has cores records pure coordination overhead, and must carry
/// `"overhead_only": true` so the number is never read as scaling data.
fn require_overhead_flag(row: &Value, i: usize, errors: &mut Vec<String>) {
    let threads = row.get("threads").and_then(number).unwrap_or(1.0);
    let cores = row.get("available_parallelism").and_then(number);
    if threads > 1.0 && cores == Some(1.0) && row.get("overhead_only") != Some(&Value::Bool(true)) {
        errors.push(format!(
            "row {i}: threads > 1 with available_parallelism == 1 \
             requires \"overhead_only\": true"
        ));
    }
}

/// Requires each key to be a finite, strictly positive number on the row.
fn require_positive(row: &Value, i: usize, errors: &mut Vec<String>, keys: &[&str]) {
    for key in keys {
        match row.get(key).and_then(number) {
            Some(x) if x.is_finite() && x > 0.0 => {}
            Some(x) => errors.push(format!(
                "row {i}: \"{key}\" must be finite and nonzero, got {x}"
            )),
            None => errors.push(format!("row {i}: missing numeric \"{key}\"")),
        }
    }
}

/// Requires each key to be a finite number (any sign) on the row.
fn require_finite(row: &Value, i: usize, errors: &mut Vec<String>, keys: &[&str]) {
    for key in keys {
        match row.get(key).and_then(number) {
            Some(x) if x.is_finite() => {}
            Some(x) => errors.push(format!("row {i}: \"{key}\" must be finite, got {x}")),
            None => errors.push(format!("row {i}: missing numeric \"{key}\"")),
        }
    }
}

/// Requires each key to be a finite number ≥ 0 on the row (counters and
/// latencies that are legitimately zero in a calm run).
fn require_finite_nonneg(row: &Value, i: usize, errors: &mut Vec<String>, keys: &[&str]) {
    for key in keys {
        match row.get(key).and_then(number) {
            Some(x) if x.is_finite() && x >= 0.0 => {}
            Some(x) => errors.push(format!(
                "row {i}: \"{key}\" must be finite and non-negative, got {x}"
            )),
            None => errors.push(format!("row {i}: missing numeric \"{key}\"")),
        }
    }
}

/// Numeric view of a JSON value, whatever integer/float variant it parsed as.
fn number(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).expect("test JSON parses")
    }

    #[test]
    fn well_formed_dumps_pass() {
        let resolver = parse(
            r#"[{"fleet": "xeon", "vms_per_machine": 4, "reused_vms_per_sec": 1.1e7,
                 "alloc_vms_per_sec": 6.0e6, "speedup": 1.96, "available_parallelism": 4}]"#,
        );
        assert!(validate(&resolver, Schema::Resolver).is_empty());

        let cluster = parse(
            r#"[{"machines": 64, "vms": 256, "mode": "serial", "threads": 1,
                 "epochs_per_sec": 19248.1, "speedup_vs_serial": 1.0, "available_parallelism": 4},
                {"migration_churn_per_sec": 8842165, "available_parallelism": 4}]"#,
        );
        assert!(validate(&cluster, Schema::Cluster).is_empty());

        let controller = parse(
            r#"[{"vms": 256, "apps": 8, "path": "generation_warm", "evals_per_sec": 253233,
                 "speedup_vs_cold": 7.59, "available_parallelism": 4},
                {"refresh_warm_us": 1119.3, "refresh_cold_us": 6660.6, "seed_history": 200,
                 "available_parallelism": 4}]"#,
        );
        assert!(validate(&controller, Schema::Controller).is_empty());
    }

    #[test]
    fn pooled_and_sweep_rows_validate_against_their_schemas() {
        let cluster = parse(
            r#"[{"machines": 256, "vms": 1024, "mode": "pooled-4", "threads": 4,
                 "epochs_per_sec": 310.0, "speedup_vs_serial": 2.4, "available_parallelism": 4,
                 "overhead_only": false}]"#,
        );
        assert!(validate(&cluster, Schema::Cluster).is_empty());

        let controller = parse(
            r#"[{"vms": 256, "apps": 8, "path": "generation_warm", "evals_per_sec": 253233,
                 "speedup_vs_cold": 7.59, "available_parallelism": 4},
                {"apps": 16, "sweep": "pooled-4", "threads": 4, "refits_per_sec": 1200.0,
                 "speedup_vs_serial": 2.1, "available_parallelism": 4}]"#,
        );
        assert!(validate(&controller, Schema::Controller).is_empty());

        let broken_sweep = parse(
            r#"[{"apps": 16, "sweep": "pooled-4", "threads": 4,
                 "speedup_vs_serial": 2.1, "available_parallelism": 4}]"#,
        );
        let errors = validate(&broken_sweep, Schema::Controller);
        assert!(
            errors.iter().any(|e| e.contains("refits_per_sec")),
            "{errors:?}"
        );
    }

    #[test]
    fn single_core_multi_thread_rows_must_be_flagged_overhead_only() {
        let unflagged = parse(
            r#"[{"machines": 64, "vms": 256, "mode": "pooled-4", "threads": 4,
                 "epochs_per_sec": 300.0, "speedup_vs_serial": 0.9, "available_parallelism": 1}]"#,
        );
        let errors = validate(&unflagged, Schema::Cluster);
        assert!(
            errors.iter().any(|e| e.contains("overhead_only")),
            "{errors:?}"
        );

        // `"overhead_only": false` is a contradiction, not a flag.
        let denied = parse(
            r#"[{"apps": 16, "sweep": "pooled-4", "threads": 4, "refits_per_sec": 900.0,
                 "speedup_vs_serial": 0.8, "available_parallelism": 1, "overhead_only": false}]"#,
        );
        let errors = validate(&denied, Schema::Controller);
        assert!(
            errors.iter().any(|e| e.contains("overhead_only")),
            "{errors:?}"
        );

        // Flagged rows pass; single-threaded and multi-core rows need no flag.
        let fine = parse(
            r#"[{"machines": 64, "vms": 256, "mode": "pooled-4", "threads": 4,
                 "epochs_per_sec": 300.0, "speedup_vs_serial": 0.9, "available_parallelism": 1,
                 "overhead_only": true},
                {"machines": 64, "vms": 256, "mode": "serial", "threads": 1,
                 "epochs_per_sec": 330.0, "speedup_vs_serial": 1.0, "available_parallelism": 1}]"#,
        );
        assert!(validate(&fine, Schema::Cluster).is_empty());
    }

    #[test]
    fn empty_and_non_array_documents_fail() {
        assert!(!validate(&parse("[]"), Schema::Resolver).is_empty());
        assert!(!validate(&parse(r#"{"fleet": "xeon"}"#), Schema::Resolver).is_empty());
    }

    #[test]
    fn zero_and_missing_rates_fail() {
        let zero_rate = parse(
            r#"[{"fleet": "xeon", "vms_per_machine": 4, "reused_vms_per_sec": 0,
                 "alloc_vms_per_sec": 6.0e6, "speedup": 1.96, "available_parallelism": 4}]"#,
        );
        let errors = validate(&zero_rate, Schema::Resolver);
        assert!(
            errors.iter().any(|e| e.contains("reused_vms_per_sec")),
            "{errors:?}"
        );

        let missing_key = parse(
            r#"[{"machines": 64, "vms": 256, "mode": "serial", "threads": 1,
                 "speedup_vs_serial": 1.0, "available_parallelism": 4}]"#,
        );
        let errors = validate(&missing_key, Schema::Cluster);
        assert!(
            errors.iter().any(|e| e.contains("epochs_per_sec")),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_available_parallelism_fails() {
        let doc = parse(
            r#"[{"vms": 256, "apps": 8, "path": "warm", "evals_per_sec": 1000.0,
                 "speedup_vs_cold": 2.0}]"#,
        );
        let errors = validate(&doc, Schema::Controller);
        assert!(
            errors.iter().any(|e| e.contains("available_parallelism")),
            "{errors:?}"
        );
    }

    #[test]
    fn dumps_of_only_auxiliary_rows_fail() {
        let doc = parse(r#"[{"migration_churn_per_sec": 100.0, "available_parallelism": 1}]"#);
        let errors = validate(&doc, Schema::Cluster);
        assert!(
            errors.iter().any(|e| e.contains("no measurement rows")),
            "{errors:?}"
        );
    }

    #[test]
    fn schema_dispatch_follows_the_file_name() {
        assert_eq!(schema_for("BENCH_resolver.json"), Some(Schema::Resolver));
        assert_eq!(schema_for("/a/b/BENCH_cluster.json"), Some(Schema::Cluster));
        assert_eq!(
            schema_for("BENCH_controller.json"),
            Some(Schema::Controller)
        );
        assert_eq!(
            schema_for("BENCH_datacenter.smoke.json"),
            Some(Schema::Datacenter)
        );
        assert_eq!(schema_for("BENCH_other.json"), None);
    }

    #[test]
    fn datacenter_engine_and_service_rows_validate() {
        let good = parse(
            r#"[{"kind": "engine", "machines": 10000, "vms": 40000, "mode": "dense",
                 "activity": 0.1, "threads": 1, "epochs_per_sec": 69.6,
                 "vm_epochs_per_sec": 2785855, "speedup_vs_dense": 1.0,
                 "available_parallelism": 1, "overhead_only": false},
                {"kind": "engine", "machines": 10000, "vms": 40000, "mode": "sparse-advance",
                 "activity": 0.1, "threads": 1, "epochs_per_sec": 841.7,
                 "vm_epochs_per_sec": 33668883, "speedup_vs_dense": 7.46,
                 "speedup_vs_dense_sweep": 12.09, "available_parallelism": 1,
                 "overhead_only": false},
                {"kind": "service", "preset": "hotmail", "machines": 10000,
                 "epochs_per_sec": 714.4, "vm_epochs_per_sec": 2887214,
                 "vm_arrivals_per_sec": 5455.6, "peak_resident": 8041,
                 "available_parallelism": 1},
                {"kind": "fault", "scenario": "disabled", "machines": 2000,
                 "blast_radius": 1, "epochs_per_sec": 1200.0, "overhead_pct": 0.31,
                 "availability_pct": 100.0, "evacuation_latency_epochs": 0.0,
                 "crashes": 0, "evacuations": 0, "drain_migrations": 0,
                 "abandonments": 0, "available_parallelism": 1}]"#,
        );
        assert!(validate(&good, Schema::Datacenter).is_empty());
    }

    #[test]
    fn datacenter_dump_without_the_disabled_fault_row_fails() {
        // Engine pair present, light-chaos fault row present — but the
        // idle-overhead baseline is missing.
        let no_disabled = parse(
            r#"[{"kind": "engine", "machines": 100, "vms": 400, "mode": "dense",
                 "activity": 0.1, "threads": 1, "epochs_per_sec": 10.0,
                 "vm_epochs_per_sec": 4000.0, "speedup_vs_dense": 1.0,
                 "available_parallelism": 1},
                {"kind": "engine", "machines": 100, "vms": 400, "mode": "sparse",
                 "activity": 0.1, "threads": 1, "epochs_per_sec": 80.0,
                 "vm_epochs_per_sec": 32000.0, "speedup_vs_dense": 8.0,
                 "available_parallelism": 1},
                {"kind": "fault", "scenario": "light", "machines": 100,
                 "blast_radius": 1, "epochs_per_sec": 9.0, "overhead_pct": 11.1,
                 "availability_pct": 96.8, "evacuation_latency_epochs": 1.5,
                 "crashes": 12, "evacuations": 30, "drain_migrations": 0,
                 "abandonments": 2, "available_parallelism": 1}]"#,
        );
        let errors = validate(&no_disabled, Schema::Datacenter);
        assert!(
            errors.iter().any(|e| e.contains("\"disabled\" fault row")),
            "{errors:?}"
        );
    }

    #[test]
    fn datacenter_fault_rows_validate() {
        // A disabled-plane idle-overhead row (100% availability, zero
        // counters, slightly negative overhead = noise) plus the full
        // blast-radius sweep (light / rack / domain) and the graceful
        // drain row all pass.
        let good = parse(
            r#"[{"kind": "engine", "machines": 100, "vms": 400, "mode": "dense",
                 "activity": 0.1, "threads": 1, "epochs_per_sec": 10.0,
                 "vm_epochs_per_sec": 4000.0, "speedup_vs_dense": 1.0,
                 "available_parallelism": 1},
                {"kind": "engine", "machines": 100, "vms": 400, "mode": "sparse",
                 "activity": 0.1, "threads": 1, "epochs_per_sec": 80.0,
                 "vm_epochs_per_sec": 32000.0, "speedup_vs_dense": 8.0,
                 "available_parallelism": 1},
                {"kind": "fault", "scenario": "disabled", "machines": 2000,
                 "blast_radius": 1, "epochs_per_sec": 1200.0, "overhead_pct": -0.42,
                 "availability_pct": 100.000, "evacuation_latency_epochs": 0.00,
                 "crashes": 0, "evacuations": 0, "drain_migrations": 0,
                 "abandonments": 0, "available_parallelism": 1},
                {"kind": "fault", "scenario": "light", "machines": 2000,
                 "blast_radius": 1, "epochs_per_sec": 1100.0, "overhead_pct": 3.80,
                 "availability_pct": 96.751, "evacuation_latency_epochs": 2.10,
                 "crashes": 7900, "evacuations": 3100, "drain_migrations": 0,
                 "abandonments": 41, "available_parallelism": 1},
                {"kind": "fault", "scenario": "rack", "machines": 2000,
                 "blast_radius": 40, "epochs_per_sec": 1050.0, "overhead_pct": 5.1,
                 "availability_pct": 93.2, "evacuation_latency_epochs": 3.4,
                 "crashes": 9100, "evacuations": 4100, "drain_migrations": 0,
                 "abandonments": 230, "available_parallelism": 1},
                {"kind": "fault", "scenario": "domain", "machines": 2000,
                 "blast_radius": 320, "epochs_per_sec": 980.0, "overhead_pct": 7.7,
                 "availability_pct": 88.0, "evacuation_latency_epochs": 4.9,
                 "crashes": 21000, "evacuations": 5200, "drain_migrations": 0,
                 "abandonments": 1900, "available_parallelism": 1},
                {"kind": "fault", "scenario": "drain", "machines": 2000,
                 "blast_radius": 1, "epochs_per_sec": 1150.0, "overhead_pct": 2.2,
                 "availability_pct": 97.4, "evacuation_latency_epochs": 0.8,
                 "crashes": 0, "evacuations": 120, "drain_migrations": 6400,
                 "abandonments": 3, "available_parallelism": 1}]"#,
        );
        assert!(validate(&good, Schema::Datacenter).is_empty());
    }

    #[test]
    fn datacenter_fault_rows_with_bad_fields_fail() {
        let over_100 = parse(
            r#"[{"kind": "fault", "scenario": "light", "machines": 100,
                 "blast_radius": 1, "epochs_per_sec": 10.0, "overhead_pct": 1.0,
                 "availability_pct": 104.2, "evacuation_latency_epochs": 0.0,
                 "crashes": 0, "evacuations": 0, "drain_migrations": 0,
                 "abandonments": 0, "available_parallelism": 1}]"#,
        );
        let errors = validate(&over_100, Schema::Datacenter);
        assert!(
            errors.iter().any(|e| e.contains("availability_pct")),
            "{errors:?}"
        );

        let negative_latency = parse(
            r#"[{"kind": "fault", "scenario": "light", "machines": 100,
                 "blast_radius": 1, "epochs_per_sec": 10.0, "overhead_pct": 1.0,
                 "availability_pct": 99.0, "evacuation_latency_epochs": -3.0,
                 "crashes": 0, "evacuations": 0, "drain_migrations": 0,
                 "abandonments": 0, "available_parallelism": 1}]"#,
        );
        let errors = validate(&negative_latency, Schema::Datacenter);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("evacuation_latency_epochs")),
            "{errors:?}"
        );

        let missing_overhead = parse(
            r#"[{"kind": "fault", "scenario": "disabled", "machines": 100,
                 "blast_radius": 1, "epochs_per_sec": 10.0, "availability_pct": 100.0,
                 "evacuation_latency_epochs": 0.0, "crashes": 0,
                 "evacuations": 0, "drain_migrations": 0, "abandonments": 0,
                 "available_parallelism": 1}]"#,
        );
        let errors = validate(&missing_overhead, Schema::Datacenter);
        assert!(
            errors.iter().any(|e| e.contains("overhead_pct")),
            "{errors:?}"
        );

        let no_scenario = parse(
            r#"[{"kind": "fault", "machines": 100, "blast_radius": 1,
                 "epochs_per_sec": 10.0, "overhead_pct": 1.0,
                 "availability_pct": 99.0, "evacuation_latency_epochs": 0.0,
                 "crashes": 0, "evacuations": 0, "drain_migrations": 0,
                 "abandonments": 0, "available_parallelism": 1}]"#,
        );
        let errors = validate(&no_scenario, Schema::Datacenter);
        assert!(errors.iter().any(|e| e.contains("scenario")), "{errors:?}");

        // A scenario outside the blast-radius sweep is a typo, not data.
        let unknown_scenario = parse(
            r#"[{"kind": "fault", "scenario": "meteor", "machines": 100,
                 "blast_radius": 1, "epochs_per_sec": 10.0, "overhead_pct": 1.0,
                 "availability_pct": 99.0, "evacuation_latency_epochs": 0.0,
                 "crashes": 0, "evacuations": 0, "drain_migrations": 0,
                 "abandonments": 0, "available_parallelism": 1}]"#,
        );
        let errors = validate(&unknown_scenario, Schema::Datacenter);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("unknown fault \"scenario\"")),
            "{errors:?}"
        );

        // Blast radius is how the sweep is read; a fault row without it
        // (or with zero) is unusable.
        let no_blast_radius = parse(
            r#"[{"kind": "fault", "scenario": "rack", "machines": 100,
                 "epochs_per_sec": 10.0, "overhead_pct": 1.0,
                 "availability_pct": 99.0, "evacuation_latency_epochs": 0.0,
                 "crashes": 0, "evacuations": 0, "drain_migrations": 0,
                 "abandonments": 0, "available_parallelism": 1}]"#,
        );
        let errors = validate(&no_blast_radius, Schema::Datacenter);
        assert!(
            errors.iter().any(|e| e.contains("blast_radius")),
            "{errors:?}"
        );

        // Negative drain-migration counters are a broken dump, not calm data.
        let negative_drains = parse(
            r#"[{"kind": "fault", "scenario": "drain", "machines": 100,
                 "blast_radius": 1, "epochs_per_sec": 10.0, "overhead_pct": 1.0,
                 "availability_pct": 99.0, "evacuation_latency_epochs": 0.0,
                 "crashes": 0, "evacuations": 0, "drain_migrations": -5,
                 "abandonments": 0, "available_parallelism": 1}]"#,
        );
        let errors = validate(&negative_drains, Schema::Datacenter);
        assert!(
            errors.iter().any(|e| e.contains("drain_migrations")),
            "{errors:?}"
        );
    }

    #[test]
    fn datacenter_rows_with_bad_kind_mode_or_activity_fail() {
        let bad_kind = parse(r#"[{"kind": "mystery", "available_parallelism": 1}]"#);
        let errors = validate(&bad_kind, Schema::Datacenter);
        assert!(
            errors.iter().any(|e| e.contains("unknown \"kind\"")),
            "{errors:?}"
        );

        let bad_mode = parse(
            r#"[{"kind": "engine", "machines": 100, "vms": 400, "mode": "warp",
                 "activity": 0.1, "threads": 1, "epochs_per_sec": 10.0,
                 "vm_epochs_per_sec": 4000.0, "speedup_vs_dense": 1.0,
                 "available_parallelism": 1}]"#,
        );
        let errors = validate(&bad_mode, Schema::Datacenter);
        assert!(
            errors.iter().any(|e| e.contains("unknown engine \"mode\"")),
            "{errors:?}"
        );

        let bad_activity = parse(
            r#"[{"kind": "engine", "machines": 100, "vms": 400, "mode": "dense",
                 "activity": 7.5, "threads": 1, "epochs_per_sec": 10.0,
                 "vm_epochs_per_sec": 4000.0, "speedup_vs_dense": 1.0,
                 "available_parallelism": 1}]"#,
        );
        let errors = validate(&bad_activity, Schema::Datacenter);
        assert!(errors.iter().any(|e| e.contains("activity")), "{errors:?}");
    }

    #[test]
    fn datacenter_dump_without_a_dense_sparse_pair_fails() {
        let dense_only = parse(
            r#"[{"kind": "engine", "machines": 100, "vms": 400, "mode": "dense",
                 "activity": 0.1, "threads": 1, "epochs_per_sec": 10.0,
                 "vm_epochs_per_sec": 4000.0, "speedup_vs_dense": 1.0,
                 "available_parallelism": 1}]"#,
        );
        let errors = validate(&dense_only, Schema::Datacenter);
        assert!(
            errors.iter().any(|e| e.contains("pair dense and sparse")),
            "{errors:?}"
        );
    }

    #[test]
    fn committed_dumps_at_the_workspace_root_are_valid() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        for file in DEFAULT_FILES {
            let errors = check_file(&format!("{root}/{file}"));
            assert!(errors.is_empty(), "{file}: {errors:?}");
        }
    }
}
