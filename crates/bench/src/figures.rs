//! One function per paper figure.
//!
//! Each function re-runs the corresponding experiment on the simulated
//! substrate and returns plain data that the bench targets print as the
//! figure's rows/series.  Absolute numbers differ from the paper (our
//! substrate is a simulator, not the authors' Xeon testbed), but the
//! qualitative shape — what separates, what is detected, which resource is
//! blamed, who wins — is asserted by the integration tests.

use cloudsim::{ClusterSeed, EpochEngine, PmId, RequestProxy, Sandbox, Vm, VmId};
use deepdive::analyzer::InterferenceAnalyzer;
use deepdive::controller::{DeepDive, DeepDiveConfig, EpochEvent};
use deepdive::cpi_stack::{CpiStack, Resource};
use deepdive::metrics::BehaviorVector;
use deepdive::placement::{CandidateMachine, PlacementManager};
use deepdive::synthetic::SyntheticBenchmark;
use deepdive::warning::WarningConfig;
use hwsim::contention::{resolve_epoch, PlacedDemand};
use hwsim::{CounterSnapshot, MachineSpec, ResourceDemand};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traces::{InterferenceSchedule, LoadTrace};
use workloads::{
    AppId, ClientEmulator, DataAnalytics, DataServing, NetworkStress, WebSearch, Workload,
};

use crate::setup::{victim_cluster, xeon_cluster, CloudWorkload, StressKind};

// The workload configuration types used by the variant sweeps.
use workloads::data_analytics::DataAnalyticsConfig;
use workloads::data_serving::DataServingConfig;
use workloads::web_search::WebSearchConfig;

/// Epochs simulated per trace hour in the trace-driven experiments.  One
/// epoch is one second of "hardware time"; sampling a few epochs per hour
/// keeps the three-day experiments fast while preserving the dynamics.
pub const EPOCHS_PER_HOUR: usize = 4;

// ---------------------------------------------------------------------------
// Figure 1 — EC2 motivation
// ---------------------------------------------------------------------------

/// One hourly sample of the Fig. 1 trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Point {
    /// Hour since the start of the three-day run.
    pub hour: usize,
    /// Client-observed throughput (requests/second).
    pub throughput_rps: f64,
    /// Client-observed average latency (ms).
    pub latency_ms: f64,
    /// Whether an interference episode was active this hour (ground truth).
    pub interference_active: bool,
}

/// Reproduces Fig. 1: a Data Serving VM under a fixed workload whose
/// performance periodically collapses when a co-located aggressor appears.
pub fn fig1_ec2_motivation(seed: u64) -> Vec<Fig1Point> {
    let schedule = InterferenceSchedule::generate(3, 3, 3_600, 2 * 3_600, seed);
    let mut cluster = victim_cluster(CloudWorkload::DataServing, 1);
    let engine = EpochEngine::serial(ClusterSeed::new(seed));
    let mut points = Vec::with_capacity(72);
    let mut aggressor_placed = false;
    for hour in 0..72usize {
        let t = hour as u64 * 3_600;
        let intensity = schedule.intensity_at(t);
        if intensity > 0.0 && !aggressor_placed {
            cluster
                .place_on(PmId(0), StressKind::Memory.vm(99, 0.5 + 0.5 * intensity))
                .expect("room for the aggressor");
            aggressor_placed = true;
        } else if intensity == 0.0 && aggressor_placed {
            cluster.remove_vm(VmId(99));
            aggressor_placed = false;
        }
        let reports = engine.step(&mut cluster, |_| 0.7);
        let victim = reports
            .iter()
            .find(|r| r.vm_id == VmId(1))
            .expect("victim report");
        points.push(Fig1Point {
            hour,
            throughput_rps: victim.observation.throughput_rps,
            latency_ms: victim.observation.latency_ms,
            interference_active: intensity > 0.0,
        });
    }
    points
}

// ---------------------------------------------------------------------------
// Figure 4 — local metric clusters / Figure 7 — Core i7 port
// ---------------------------------------------------------------------------

/// One point of the Fig. 4 / Fig. 7 metric-space scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// Experimental setting label.
    pub setting: String,
    /// Normalized metric coordinates (the three plotted axes).
    pub coords: [f64; 3],
    /// Whether interference was injected for this point.
    pub interference: bool,
}

/// Result of a metric-cluster experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricClusters {
    /// All points (interference and non-interference).
    pub points: Vec<MetricPoint>,
    /// Separation score: distance between the group centroids divided by the
    /// summed within-group spread.  Values well above 1 mean the groups are
    /// easily separable, which is the figure's claim.
    pub separation_score: f64,
}

fn behavior_axes(counters: &CounterSnapshot, axes: [usize; 3]) -> [f64; 3] {
    let b = BehaviorVector::from_counters(counters);
    [b.values[axes[0]], b.values[axes[1]], b.values[axes[2]]]
}

fn separation_score(points: &[MetricPoint]) -> f64 {
    let groups: [Vec<&MetricPoint>; 2] = [
        points.iter().filter(|p| !p.interference).collect(),
        points.iter().filter(|p| p.interference).collect(),
    ];
    if groups[0].is_empty() || groups[1].is_empty() {
        return 0.0;
    }
    let centroid = |g: &Vec<&MetricPoint>| -> [f64; 3] {
        let mut c = [0.0; 3];
        for p in g {
            for (cd, &pv) in c.iter_mut().zip(&p.coords) {
                *cd += pv;
            }
        }
        for v in c.iter_mut() {
            *v /= g.len() as f64;
        }
        c
    };
    let spread = |g: &Vec<&MetricPoint>, c: &[f64; 3]| -> f64 {
        if g.len() < 2 {
            return 0.0;
        }
        (g.iter()
            .map(|p| {
                p.coords
                    .iter()
                    .zip(c)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / g.len() as f64)
            .sqrt()
    };
    let (c0, c1) = (centroid(&groups[0]), centroid(&groups[1]));
    let dist = c0
        .iter()
        .zip(&c1)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let denom = spread(&groups[0], &c0) + spread(&groups[1], &c1);
    if denom <= 1e-12 {
        f64::INFINITY
    } else {
        dist / denom
    }
}

/// Builds the workload-configuration variants used as "different experimental
/// settings" in Fig. 4 (load intensities × qualitative knobs).
fn workload_variants(workload: CloudWorkload) -> Vec<(String, Box<dyn Workload>)> {
    let mut variants: Vec<(String, Box<dyn Workload>)> = Vec::new();
    match workload {
        CloudWorkload::DataServing => {
            for &skew in &[0.6, 0.8, 1.0] {
                for &writes in &[0.02, 0.2] {
                    variants.push((
                        format!("skew={skew},writes={writes}"),
                        Box::new(DataServing::new(
                            AppId(1),
                            DataServingConfig {
                                key_popularity_skew: skew,
                                write_fraction: writes,
                                ..DataServingConfig::default()
                            },
                        )),
                    ));
                }
            }
        }
        CloudWorkload::WebSearch => {
            for &skew in &[0.6, 0.8, 1.0] {
                variants.push((
                    format!("word-skew={skew}"),
                    Box::new(WebSearch::new(
                        AppId(2),
                        WebSearchConfig {
                            word_popularity_skew: skew,
                            ..WebSearchConfig::default()
                        },
                    )),
                ));
            }
        }
        CloudWorkload::DataAnalytics => {
            for &remote in &[0.3, 0.6, 0.9] {
                variants.push((
                    format!("remote-fetch={remote}"),
                    Box::new(DataAnalytics::new(
                        AppId(3),
                        workloads::data_analytics::AnalyticsRole::Worker,
                        DataAnalyticsConfig {
                            remote_fetch_fraction: remote,
                            ..DataAnalyticsConfig::default()
                        },
                    )),
                ));
            }
        }
    }
    variants
}

/// Runs the Fig. 4 experiment for one workload on the given machine model,
/// projecting onto the given behaviour-vector axes.
fn metric_cluster_experiment(
    workload: CloudWorkload,
    spec: &MachineSpec,
    axes: [usize; 3],
    seed: u64,
) -> MetricClusters {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::new();
    let loads = [0.3, 0.6, 0.9];
    for (label, mut wl) in workload_variants(workload) {
        for &load in &loads {
            // Warm through one analytics cycle so phase-dependent workloads
            // contribute several distinct-but-normal behaviours.
            for step in 0..3 {
                let demand = wl.next_demand(load, &mut rng);
                if demand.instructions <= 0.0 {
                    continue;
                }
                // Without interference: the VM alone on the machine.
                let solo = resolve_epoch(spec, &[PlacedDemand::new(1, demand.clone(), 2, 0)]);
                points.push(MetricPoint {
                    setting: format!("{label},load={load},step={step}"),
                    coords: behavior_axes(&solo[0].counters, axes),
                    interference: false,
                });
                // With injected memory-stress interference of varying size.
                for &intensity in &[0.5, 1.0] {
                    let ws = 6.0 + intensity * (512.0 - 6.0);
                    let aggressor = ResourceDemand::builder()
                        .instructions(2.5e9)
                        .working_set_mb(ws)
                        .l1_mpki(70.0)
                        .llc_mpki_solo(3.0 + 45.0 * (ws / 128.0).min(1.0))
                        .locality(0.0)
                        .parallelism(2.0)
                        .build();
                    let contended = resolve_epoch(
                        spec,
                        &[
                            PlacedDemand::new(1, demand.clone(), 2, 0),
                            PlacedDemand::new(2, aggressor, 2, 0),
                        ],
                    );
                    points.push(MetricPoint {
                        setting: format!("{label},load={load},step={step},stress={intensity}"),
                        coords: behavior_axes(&contended[0].counters, axes),
                        interference: true,
                    });
                }
            }
        }
    }
    let separation_score = separation_score(&points);
    MetricClusters {
        points,
        separation_score,
    }
}

/// Fig. 4: normalized L1 / L2 / memory-stall metrics for one workload, with
/// and without interference, on the Xeon testbed.
pub fn fig4_metric_clusters(workload: CloudWorkload, seed: u64) -> MetricClusters {
    // Axes: l1_misses_pki (1), llc_lines_in_pki (2), stall_cycles_pki (4).
    metric_cluster_experiment(workload, &MachineSpec::xeon_x5472(), [1, 2, 4], seed)
}

/// Fig. 7: the same separability demonstrated on the Core i7/Nehalem port,
/// using the overall CPI, L3 and QPI axes the paper plots.
pub fn fig7_i7_port(seed: u64) -> MetricClusters {
    // Axes: cpi (0), llc_lines_in_pki (2 — "L3"), bus_outstanding_pki (6 — "QPI").
    metric_cluster_experiment(
        CloudWorkload::DataServing,
        &MachineSpec::core_i7_nehalem(),
        [0, 2, 6],
        seed,
    )
}

// ---------------------------------------------------------------------------
// Figure 5 — global information
// ---------------------------------------------------------------------------

/// One PM's Data Analytics worker in the Fig. 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Physical machine index.
    pub pm: usize,
    /// Whether an iperf aggressor runs on this PM (ground truth).
    pub interfered: bool,
    /// Mean normalized network-stall metric over the shuffle phase.
    pub net_stalls: f64,
    /// Mean cycles per instruction over the shuffle phase.
    pub cpi: f64,
}

/// Fig. 5: nine PMs run the same Data Analytics workload; iperf aggressors on
/// a subset of PMs make those PMs' metrics deviate from the rest.
pub fn fig5_global_information(interfered_pms: usize, seed: u64) -> Vec<Fig5Point> {
    assert!(interfered_pms <= 9, "at most nine PMs in this experiment");
    let mut cluster = xeon_cluster(9);
    for pm in 0..9u64 {
        let vm = Vm::new(
            VmId(pm + 1),
            Box::new(DataAnalytics::worker(AppId(3))),
            ClientEmulator::new(40.0, 400.0),
        );
        cluster.place_on(PmId(pm), vm).expect("capacity");
        if (pm as usize) < interfered_pms {
            let iperf = Vm::new(
                VmId(100 + pm),
                Box::new(NetworkStress::new(AppId(901), 600.0)),
                ClientEmulator::new(1.0, 1.0),
            );
            cluster.place_on(PmId(pm), iperf).expect("capacity");
        }
    }
    let engine = EpochEngine::serial(ClusterSeed::new(seed));
    // Run a full map/shuffle/reduce cycle and accumulate each worker's
    // behaviour during the shuffle epochs (where network interference can
    // manifest).
    let mut sums = vec![(0.0_f64, 0.0_f64, 0usize); 9];
    for epoch in 0..12 {
        let reports = engine.step(&mut cluster, |_| 0.9);
        // Shuffle epochs for the default config are epochs 6..9 of the cycle.
        if !(6..9).contains(&epoch) {
            continue;
        }
        for r in &reports {
            if r.vm_id.0 >= 100 {
                continue; // skip the aggressors themselves
            }
            let b = BehaviorVector::from_counters(&r.counters);
            let slot = (r.vm_id.0 - 1) as usize;
            sums[slot].0 += b.values[9]; // net stall per GI
            sums[slot].1 += b.values[0]; // cpi
            sums[slot].2 += 1;
        }
    }
    sums.iter()
        .enumerate()
        .map(|(pm, (net, cpi, n))| Fig5Point {
            pm,
            interfered: pm < interfered_pms,
            net_stalls: if *n > 0 { net / *n as f64 } else { 0.0 },
            cpi: if *n > 0 { cpi / *n as f64 } else { 0.0 },
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 6 — CPI-stack breakdown and culprit identification
// ---------------------------------------------------------------------------

/// The three interference scenarios of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig6Scenario {
    /// Scenario A: last-level-cache interference.
    LastLevelCache,
    /// Scenario B: front-side-bus (memory interconnect) interference.
    FrontSideBus,
    /// Scenario C: I/O interference (disk or network, per workload pairing).
    Io,
}

impl Fig6Scenario {
    /// All scenarios in the paper's order.
    pub const ALL: [Fig6Scenario; 3] = [
        Fig6Scenario::LastLevelCache,
        Fig6Scenario::FrontSideBus,
        Fig6Scenario::Io,
    ];

    /// Scenario label used in the printed output.
    pub fn name(&self) -> &'static str {
        match self {
            Fig6Scenario::LastLevelCache => "Scenario A (LLC)",
            Fig6Scenario::FrontSideBus => "Scenario B (FSB)",
            Fig6Scenario::Io => "Scenario C (I/O)",
        }
    }

    /// The resources the analyzer is expected to blame in this scenario.
    pub fn expected_culprits(&self, workload: CloudWorkload) -> Vec<Resource> {
        match self {
            Fig6Scenario::LastLevelCache => vec![Resource::CacheMemory, Resource::MemoryBus],
            Fig6Scenario::FrontSideBus => vec![Resource::MemoryBus, Resource::CacheMemory],
            Fig6Scenario::Io => match workload {
                CloudWorkload::DataAnalytics => vec![Resource::Network, Resource::Disk],
                _ => vec![Resource::Disk, Resource::Network],
            },
        }
    }

    /// The aggressor VM used to create this scenario for a given victim.
    fn aggressor(&self, workload: CloudWorkload) -> Vm {
        match self {
            // A moderate working set thrashes the shared cache without
            // saturating the bus.
            Fig6Scenario::LastLevelCache => StressKind::Memory.vm(99, 0.06),
            // A huge working set floods the interconnect.
            Fig6Scenario::FrontSideBus => StressKind::Memory.vm(99, 1.0),
            Fig6Scenario::Io => match workload {
                CloudWorkload::DataAnalytics => StressKind::Network.vm(99, 1.0),
                _ => StressKind::Disk.vm(99, 1.0),
            },
        }
    }
}

/// Per-component stalled cycles per instruction, in Fig. 6's four categories.
pub type StackCpi = [f64; 4];

/// Result of one Fig. 6 cell (one workload × one scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Cell {
    /// The victim workload.
    pub workload: &'static str,
    /// The scenario.
    pub scenario: &'static str,
    /// Isolation breakdown: [Core, L2 miss, FSB, Net+Disk] cycles/instr.
    pub isolation: StackCpi,
    /// Production breakdown in the same categories.
    pub production: StackCpi,
    /// The resource the analyzer blames.
    pub culprit: Option<Resource>,
    /// The resources the scenario is expected to implicate.
    pub expected: Vec<Resource>,
}

fn stack_to_fig6(stack: &CpiStack, clock_hz: f64, instructions: f64) -> StackCpi {
    let per = stack.per_instruction(clock_hz, instructions);
    // per is [(Core, v), (CacheMemory, v), (MemoryBus, v), (Disk, v), (Network, v)]
    [per[0].1, per[1].1, per[2].1, per[3].1 + per[4].1]
}

/// Fig. 6: stalled-cycles-per-instruction breakdown in isolation vs
/// production for one workload and scenario, plus the analyzer's culprit.
pub fn fig6_cpi_breakdown(workload: CloudWorkload, scenario: Fig6Scenario, seed: u64) -> Fig6Cell {
    let spec = MachineSpec::xeon_x5472();
    let epochs = 12usize;
    // One engine for both runs: the victim's per-(vm, epoch) streams are
    // identical in isolation and production by construction.
    let engine = EpochEngine::serial(ClusterSeed::new(seed));
    // Isolation run.
    let mut solo = victim_cluster(workload, 1);
    let mut iso_counters = Vec::new();
    for _ in 0..epochs {
        let reports = engine.step(&mut solo, |_| 1.0);
        iso_counters.push(reports[0].counters);
    }
    // Production run with the scenario aggressor.
    let mut prod = victim_cluster(workload, 1);
    prod.place_on(PmId(0), scenario.aggressor(workload))
        .expect("capacity");
    let mut prod_counters = Vec::new();
    for _ in 0..epochs {
        let reports = engine.step(&mut prod, |_| 1.0);
        let victim = reports.iter().find(|r| r.vm_id == VmId(1)).unwrap();
        prod_counters.push(victim.counters);
    }
    let mean = |cs: &[CounterSnapshot]| {
        cs.iter()
            .fold(CounterSnapshot::zero(), |a, c| a.add(c))
            .scale(1.0 / cs.len() as f64)
    };
    let iso_mean = mean(&iso_counters);
    let prod_mean = mean(&prod_counters);
    let iso_stack = CpiStack::from_counters(&iso_mean, &spec);
    let prod_stack = CpiStack::from_counters(&prod_mean, &spec);
    let culprit = CpiStack::dominant_culprit(&prod_stack, &iso_stack).map(|(r, _)| r);
    Fig6Cell {
        workload: workload.name(),
        scenario: scenario.name(),
        isolation: stack_to_fig6(&iso_stack, spec.clock_hz, iso_mean.inst_retired),
        production: stack_to_fig6(&prod_stack, spec.clock_hz, prod_mean.inst_retired),
        culprit,
        expected: scenario.expected_culprits(workload),
    }
}

// ---------------------------------------------------------------------------
// Figure 8 — detection and false-positive rates / Figure 12 — overhead
// ---------------------------------------------------------------------------

/// One day of the Fig. 8 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Day {
    /// Day index (0-based).
    pub day: usize,
    /// Fraction of qualifying interference episodes detected (1.0 = all).
    pub detection_rate: f64,
    /// Fraction of analyzer invocations that were unnecessary (no
    /// interference present).
    pub false_positive_rate: f64,
    /// Number of qualifying interference episodes that day.
    pub episodes: usize,
    /// Number of analyzer invocations that day.
    pub invocations: usize,
}

/// Full result of the trace-driven detection experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// Per-day rates (three days).
    pub days: Vec<Fig8Day>,
    /// Cumulative profiling minutes per hour (DeepDive line of Fig. 12).
    pub cumulative_profiling_minutes: Vec<f64>,
    /// Whether any qualifying episode went completely undetected.
    pub missed_episodes: usize,
}

/// Runs the three-day HotMail-trace experiment for one workload: DeepDive
/// monitors a victim VM while memory-stress episodes from an EC2-style
/// schedule are injected, and we score detections and false positives
/// (Fig. 8) plus the accumulated profiling time (Fig. 12's DeepDive line).
pub fn fig8_detection(workload: CloudWorkload, seed: u64) -> Fig8Result {
    let trace = LoadTrace::diurnal(3, 0.3, 0.9, seed);
    let schedule = InterferenceSchedule::generate(3, 3, 2 * 3_600, 4 * 3_600, seed ^ 0xEC2);
    let mut cluster = victim_cluster(workload, 2);
    let config = DeepDiveConfig {
        analysis_window: 4,
        analysis_cooldown: 2,
        confirmed_cooldown: 6,
        auto_migrate: true,
        synthetic_training_samples: 120,
        performance_threshold: 0.12,
        warning: WarningConfig {
            min_behaviors_for_clustering: 8,
            ..WarningConfig::default()
        },
        ..DeepDiveConfig::default()
    };
    let mut deepdive = DeepDive::new(config, Sandbox::xeon_pool(4));
    let engine = EpochEngine::serial(ClusterSeed::new(seed));

    let hours = 72usize;
    let mut aggressor_placed = false;
    // Per-episode detection bookkeeping: (episode index, detected?).
    let mut episode_detected = vec![false; schedule.episodes.len()];
    // Per-episode client-degradation accumulators: an episode "qualifies" as
    // a performance crisis when its *average* client-reported degradation
    // exceeds 20%, matching how the paper labels crises (§5.1).
    let mut episode_degradation = vec![(0.0_f64, 0usize); schedule.episodes.len()];
    let mut invocations_per_day = [0usize; 3];
    let mut false_positives_per_day = [0usize; 3];
    let mut cumulative_profiling_minutes = Vec::with_capacity(hours);

    for hour in 0..hours {
        let day = hour / 24;
        let t = hour as u64 * 3_600;
        let load = trace.load_at_hour(hour);
        let active_episode = schedule.episodes.iter().position(|e| e.contains(t));
        match active_episode {
            Some(idx) => {
                if !aggressor_placed {
                    let intensity = schedule.episodes[idx].intensity;
                    let victim_home = cluster.locate(VmId(1)).expect("victim is placed");
                    cluster
                        .place_on(
                            victim_home,
                            StressKind::Memory.vm(99, 0.5 + 0.5 * intensity),
                        )
                        .expect("capacity for the aggressor");
                    aggressor_placed = true;
                }
            }
            None => {
                if aggressor_placed {
                    cluster.remove_vm(VmId(99));
                    aggressor_placed = false;
                }
            }
        }
        for _ in 0..EPOCHS_PER_HOUR {
            let reports = engine.step(&mut cluster, |_| load);
            // Ground truth: does the victim suffer >20% client degradation?
            let victim = reports.iter().find(|r| r.vm_id == VmId(1)).unwrap();
            let baseline = victim_baseline_latency(workload);
            let degradation = ((victim.observation.latency_ms - baseline) / baseline).max(0.0);
            if let Some(idx) = active_episode {
                episode_degradation[idx].0 += degradation;
                episode_degradation[idx].1 += 1;
            }
            let events = deepdive.process_epoch(&mut cluster, &reports);
            for event in &events {
                if let EpochEvent::Analyzed { vm, result, .. } = event {
                    if *vm != VmId(1) {
                        continue;
                    }
                    invocations_per_day[day] += 1;
                    match active_episode {
                        Some(idx) if result.interference_confirmed => {
                            episode_detected[idx] = true;
                        }
                        Some(_) => {}
                        None => false_positives_per_day[day] += 1,
                    }
                }
            }
        }
        cumulative_profiling_minutes.push(deepdive.stats().profiling_seconds / 60.0);
    }

    let episode_qualified: Vec<bool> = episode_degradation
        .iter()
        .map(|(sum, n)| *n > 0 && sum / *n as f64 > 0.20)
        .collect();
    let mut days = Vec::with_capacity(3);
    let mut missed = 0usize;
    for day in 0..3usize {
        let day_start = day as u64 * 86_400;
        let day_end = day_start + 86_400;
        let mut qualifying = 0usize;
        let mut detected = 0usize;
        for (idx, e) in schedule.episodes.iter().enumerate() {
            if e.start_s >= day_start && e.start_s < day_end && episode_qualified[idx] {
                qualifying += 1;
                if episode_detected[idx] {
                    detected += 1;
                } else {
                    missed += 1;
                }
            }
        }
        let detection_rate = if qualifying == 0 {
            1.0
        } else {
            detected as f64 / qualifying as f64
        };
        let false_positive_rate = if invocations_per_day[day] == 0 {
            0.0
        } else {
            false_positives_per_day[day] as f64 / invocations_per_day[day] as f64
        };
        days.push(Fig8Day {
            day,
            detection_rate,
            false_positive_rate,
            episodes: qualifying,
            invocations: invocations_per_day[day],
        });
    }
    Fig8Result {
        days,
        cumulative_profiling_minutes,
        missed_episodes: missed,
    }
}

fn victim_baseline_latency(workload: CloudWorkload) -> f64 {
    match workload {
        CloudWorkload::DataServing => 4.0,
        CloudWorkload::WebSearch => 25.0,
        CloudWorkload::DataAnalytics => 400.0,
    }
}

/// One series of the Fig. 12 comparison: cumulative profiling minutes per
/// hour for DeepDive and for the naive baselines that re-profile whenever
/// client-visible performance varies by more than a threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Result {
    /// Hour indices (0..72).
    pub hours: Vec<usize>,
    /// DeepDive's cumulative profiling minutes.
    pub deepdive: Vec<f64>,
    /// Baseline-5% cumulative profiling minutes.
    pub baseline_5: Vec<f64>,
    /// Baseline-10% cumulative profiling minutes.
    pub baseline_10: Vec<f64>,
    /// Baseline-20% cumulative profiling minutes.
    pub baseline_20: Vec<f64>,
}

/// Fig. 12: DeepDive's accumulated profiling time against baselines that
/// trigger the analyzer on every performance variation above 5/10/20%.
///
/// The baselines watch the client-visible throughput (which follows the
/// HotMail load trace) and latency; because load changes hourly, they cannot
/// tell workload changes from interference and re-profile constantly.
pub fn fig12_profiling_overhead(seed: u64) -> Fig12Result {
    let workload = CloudWorkload::DataServing;
    let deepdive_run = fig8_detection(workload, seed);
    // Baselines: replay the same trace and count invocations.
    let trace = LoadTrace::diurnal(3, 0.3, 0.9, seed);
    let schedule = InterferenceSchedule::generate(3, 3, 2 * 3_600, 4 * 3_600, seed ^ 0xEC2);
    let per_invocation_minutes = 35.0 / 60.0;
    let thresholds = [0.05, 0.10, 0.20];
    let mut baselines: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(72)).collect();
    let mut cumulative = [0.0_f64; 3];
    let mut previous_throughput: Option<f64> = None;
    for hour in 0..72usize {
        let t = hour as u64 * 3_600;
        let load = trace.load_at_hour(hour);
        // Client-visible throughput this hour (degraded when an episode is
        // active, mirroring the live run).
        let degradation = if schedule.intensity_at(t) > 0.0 {
            0.35
        } else {
            0.0
        };
        let throughput = 8_000.0 * load * (1.0 - degradation);
        if let Some(prev) = previous_throughput {
            let variation = (throughput - prev).abs() / prev.max(1.0);
            for (b, &threshold) in thresholds.iter().enumerate() {
                if variation > threshold {
                    cumulative[b] += per_invocation_minutes * EPOCHS_PER_HOUR as f64;
                }
            }
        }
        previous_throughput = Some(throughput);
        for b in 0..3 {
            baselines[b].push(cumulative[b]);
        }
    }
    Fig12Result {
        hours: (0..72).collect(),
        deepdive: deepdive_run.cumulative_profiling_minutes,
        baseline_5: baselines[0].clone(),
        baseline_10: baselines[1].clone(),
        baseline_20: baselines[2].clone(),
    }
}

// ---------------------------------------------------------------------------
// Figure 9 — analyzer accuracy
// ---------------------------------------------------------------------------

/// One bar group of Fig. 9: client-reported vs analyzer-estimated slowdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Point {
    /// Stress intensity in `[0, 1]` (maps onto the paper's parameter sweep).
    pub intensity: f64,
    /// Client-reported performance degradation (latency / completion-time
    /// slowdown, as a fraction).
    pub client_reported: f64,
    /// Analyzer-estimated slowdown from counters alone.
    pub estimated: f64,
}

/// Fig. 9: for one workload, sweep the paired stress workload's intensity and
/// compare client-reported degradation with the analyzer's estimate.
pub fn fig9_degradation_accuracy(workload: CloudWorkload, seed: u64) -> Vec<Fig9Point> {
    let stress = workload.paired_stress();
    let analyzer = InterferenceAnalyzer::new(0.05);
    // Counters are interpreted with the sandbox pool's machine model — the
    // Xeon here, matching the victim cluster below.
    let sandbox = Sandbox::xeon_pool(2);
    let window = 8usize;
    let mut points = Vec::new();
    for &intensity in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let engine = EpochEngine::serial(ClusterSeed::new(seed));
        // Baseline (isolation) run.
        let mut solo = victim_cluster(workload, 1);
        let mut baseline_latency = 0.0;
        for _ in 0..window {
            let reports = engine.step(&mut solo, |_| 1.0);
            baseline_latency += reports[0].observation.latency_ms;
        }
        baseline_latency /= window as f64;

        // Production run with the aggressor: same engine, so the victim
        // draws the same demand stream as in the baseline.
        let mut prod = victim_cluster(workload, 1);
        prod.place_on(PmId(0), stress.vm(99, intensity))
            .expect("capacity");
        let mut proxy = RequestProxy::new(window);
        let mut counters = Vec::new();
        let mut prod_latency = 0.0;
        for _ in 0..window {
            let reports = engine.step(&mut prod, |_| 1.0);
            let victim = reports.iter().find(|r| r.vm_id == VmId(1)).unwrap();
            proxy.record(victim.vm_id, victim.demand.clone());
            counters.push(victim.counters);
            prod_latency += victim.observation.latency_ms;
        }
        prod_latency /= window as f64;

        let client_reported = ((prod_latency - baseline_latency) / baseline_latency).max(0.0);
        let result = analyzer.analyze(VmId(1), &counters, &proxy.replay(VmId(1)), &sandbox, 2);
        // Convert the instruction-rate degradation into the same slowdown
        // domain the clients report (latency inflation).
        let estimated = if result.degradation >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - result.degradation) - 1.0
        };
        points.push(Fig9Point {
            intensity,
            client_reported,
            estimated,
        });
    }
    points
}

// ---------------------------------------------------------------------------
// Figure 10 — synthetic benchmark accuracy
// ---------------------------------------------------------------------------

/// One bar group of Fig. 10: the degradation suffered by the real VM vs by
/// its synthetic representation under the same interference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Point {
    /// Stress intensity in `[0, 1]`.
    pub intensity: f64,
    /// Degradation of the real VM (fraction of lost work).
    pub real_degradation: f64,
    /// Degradation of the synthetic clone under the same co-location.
    pub synthetic_degradation: f64,
}

/// Fig. 10: how closely the synthetic benchmark's degradation under
/// interference tracks the real VM's.
pub fn fig10_synthetic_accuracy(
    workload: CloudWorkload,
    benchmark: &SyntheticBenchmark,
    seed: u64,
) -> Vec<Fig10Point> {
    let spec = benchmark.spec.clone();
    let stress = workload.paired_stress();
    let mut rng = StdRng::seed_from_u64(seed);
    // Representative demand and behaviour of the real VM at full load.
    let mut wl = workload.workload();
    let demand = wl.next_demand(1.0, &mut rng);
    let solo = resolve_epoch(&spec, &[PlacedDemand::new(1, demand.clone(), 2, 0)]);
    let behavior = BehaviorVector::from_counters(&solo[0].counters);
    let clone_demand = benchmark.mimic(&behavior, demand.instructions).demand();
    let clone_solo = resolve_epoch(&spec, &[PlacedDemand::new(1, clone_demand.clone(), 2, 0)]);

    let mut points = Vec::new();
    for &intensity in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut stress_wl = match stress {
            StressKind::Memory => StressKind::Memory.vm(99, intensity),
            StressKind::Network => StressKind::Network.vm(99, intensity),
            StressKind::Disk => StressKind::Disk.vm(99, intensity),
        };
        let stress_demand = stress_wl.workload.next_demand(1.0, &mut rng);
        let degradation = |victim: &ResourceDemand, baseline: f64| -> f64 {
            let out = resolve_epoch(
                &spec,
                &[
                    PlacedDemand::new(1, victim.clone(), 2, 0),
                    PlacedDemand::new(2, stress_demand.clone(), 2, 0),
                ],
            );
            ((baseline - out[0].achieved_fraction) / baseline).max(0.0)
        };
        points.push(Fig10Point {
            intensity,
            real_degradation: degradation(&demand, solo[0].achieved_fraction),
            synthetic_degradation: degradation(&clone_demand, clone_solo[0].achieved_fraction),
        });
    }
    points
}

// ---------------------------------------------------------------------------
// Figure 11 — placement robustness
// ---------------------------------------------------------------------------

/// Result of the placement-robustness experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Result {
    /// Real interference measured at the destination DeepDive picked.
    pub deepdive_choice: f64,
    /// Real interference at the best possible destination.
    pub best: f64,
    /// Average real interference across all destinations.
    pub average: f64,
    /// Real interference at the worst destination.
    pub worst: f64,
    /// The candidate DeepDive selected.
    pub chosen_pm: Option<PmId>,
}

/// Fig. 11: the placement manager predicts, via the synthetic benchmark,
/// which of three candidate PMs (each running one cloud workload) should
/// receive an aggressive memory-stress VM, and we compare the *real*
/// interference at that choice against the best / average / worst placements.
pub fn fig11_placement_robustness(benchmark: &SyntheticBenchmark, seed: u64) -> Fig11Result {
    let spec = benchmark.spec.clone();
    let manager = PlacementManager::new(1.0);
    let mut rng = StdRng::seed_from_u64(seed);

    // The aggressive VM to place: a large memory-stress kernel.
    let mut aggressor = StressKind::Memory.vm(50, 0.6);
    let aggressor_demand = aggressor.workload.next_demand(1.0, &mut rng);
    let solo = resolve_epoch(
        &spec,
        &[PlacedDemand::new(1, aggressor_demand.clone(), 2, 0)],
    );
    let aggressor_behavior = BehaviorVector::from_counters(&solo[0].counters);
    let clone_demand = benchmark
        .mimic(&aggressor_behavior, aggressor_demand.instructions)
        .demand();

    // Three candidates, each running one cloud workload at substantial load.
    let mut candidates = Vec::new();
    let mut real_interference = Vec::new();
    for (i, workload) in CloudWorkload::ALL.iter().enumerate() {
        let mut wl = workload.workload();
        let resident_demand = wl.next_demand(0.9, &mut rng);
        let resident_solo = resolve_epoch(
            &spec,
            &[PlacedDemand::new(1, resident_demand.clone(), 2, 0)],
        );
        // Ground truth: actually co-locate the real aggressor.
        let together = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, resident_demand.clone(), 2, 0),
                PlacedDemand::new(2, aggressor_demand.clone(), 2, 0),
            ],
        );
        let real = ((resident_solo[0].achieved_fraction - together[0].achieved_fraction)
            / resident_solo[0].achieved_fraction)
            .max(0.0);
        real_interference.push(real);
        candidates.push(CandidateMachine {
            pm_id: PmId(10 + i as u64),
            spec: spec.clone(),
            resident_demands: vec![resident_demand],
            free_cores: 6,
        });
    }

    // DeepDive's prediction-based choice.
    let predictions: Vec<(PmId, f64)> = candidates
        .iter()
        .map(|c| (c.pm_id, manager.predict_on_candidate(&clone_demand, 2, c)))
        .collect();
    let chosen_pm = predictions
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite predictions"))
        .map(|(pm, _)| *pm);
    let chosen_idx = chosen_pm.map(|pm| (pm.0 - 10) as usize);

    let best = real_interference
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let worst = real_interference.iter().cloned().fold(0.0, f64::max);
    let average = real_interference.iter().sum::<f64>() / real_interference.len() as f64;
    Fig11Result {
        deepdive_choice: chosen_idx.map(|i| real_interference[i]).unwrap_or(f64::NAN),
        best,
        average,
        worst,
        chosen_pm,
    }
}

// ---------------------------------------------------------------------------
// §5.5 — memory overhead
// ---------------------------------------------------------------------------

/// Behaviour-repository footprint for a VM analyzed once per hour for a day,
/// in bytes (the paper bounds this at 5 KB).
pub fn memory_overhead_bytes_per_vm_day() -> usize {
    use deepdive::repository::BehaviorRepository;
    let mut repo = BehaviorRepository::new();
    let app = AppId(1);
    for hour in 0..24u64 {
        let behavior = BehaviorVector::from_vec(&[hour as f64; deepdive::metrics::DIMENSIONS]);
        repo.record_normal(app, behavior, hour * 3_600);
    }
    repo.footprint_bytes(app)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_degradation_only_during_episodes() {
        let points = fig1_ec2_motivation(1);
        assert_eq!(points.len(), 72);
        let quiet: Vec<&Fig1Point> = points.iter().filter(|p| !p.interference_active).collect();
        let noisy: Vec<&Fig1Point> = points.iter().filter(|p| p.interference_active).collect();
        assert!(!quiet.is_empty() && !noisy.is_empty());
        let mean = |ps: &[&Fig1Point], f: fn(&Fig1Point) -> f64| {
            ps.iter().map(|p| f(p)).sum::<f64>() / ps.len() as f64
        };
        assert!(mean(&noisy, |p| p.latency_ms) > mean(&quiet, |p| p.latency_ms));
        assert!(mean(&noisy, |p| p.throughput_rps) < mean(&quiet, |p| p.throughput_rps));
    }

    #[test]
    fn fig4_clusters_are_separable_for_every_workload() {
        for workload in CloudWorkload::ALL {
            let clusters = fig4_metric_clusters(workload, 3);
            assert!(
                clusters.separation_score > 1.0,
                "{} separation score {}",
                workload.name(),
                clusters.separation_score
            );
        }
    }

    #[test]
    fn fig5_interfered_machines_deviate() {
        let points = fig5_global_information(3, 5);
        let interfered: Vec<&Fig5Point> = points.iter().filter(|p| p.interfered).collect();
        let clean: Vec<&Fig5Point> = points.iter().filter(|p| !p.interfered).collect();
        let mean_net =
            |ps: &[&Fig5Point]| ps.iter().map(|p| p.net_stalls).sum::<f64>() / ps.len() as f64;
        assert!(mean_net(&interfered) > 2.0 * mean_net(&clean).max(1e-9));
    }

    #[test]
    fn fig6_culprit_matches_each_scenario() {
        for workload in CloudWorkload::ALL {
            for scenario in Fig6Scenario::ALL {
                let cell = fig6_cpi_breakdown(workload, scenario, 7);
                let culprit = cell.culprit.expect("a culprit must be identified");
                assert!(
                    cell.expected.contains(&culprit),
                    "{} / {}: culprit {:?} not in expected {:?} (iso {:?} prod {:?})",
                    cell.workload,
                    cell.scenario,
                    culprit,
                    cell.expected,
                    cell.isolation,
                    cell.production
                );
            }
        }
    }

    #[test]
    fn fig9_estimates_are_close_to_client_reports() {
        for workload in CloudWorkload::ALL {
            let points = fig9_degradation_accuracy(workload, 11);
            let mean_error = points
                .iter()
                .map(|p| (p.estimated - p.client_reported).abs())
                .sum::<f64>()
                / points.len() as f64;
            assert!(
                mean_error < 0.15,
                "{}: mean |estimate - client| = {mean_error}",
                workload.name()
            );
        }
    }

    #[test]
    fn memory_overhead_stays_under_five_kilobytes() {
        assert!(memory_overhead_bytes_per_vm_day() < 5 * 1024);
    }
}
