#![forbid(unsafe_code)]
//! # traces — load-intensity, interference-episode and VM-arrival traces
//!
//! The paper's evaluation is trace-driven (§5.1):
//!
//! * **HotMail load traces** (September 2009): aggregated load across
//!   thousands of servers, averaged over one-hour periods, replayed for
//!   three days to drive the cloud workloads' client intensity.
//! * **EC2 interference episodes**: the authors ran their Data Serving
//!   workload on Amazon EC2 for three days, labelled every interval whose
//!   client-reported degradation exceeded 20% as a performance crisis, and
//!   replayed those time slots as the moments at which to start the stress
//!   workloads.
//! * **VM arrivals**: the scalability analysis assumes 1000 new VMs per day
//!   arriving as a Poisson (Fig. 13) or lognormal (Fig. 14) process, with a
//!   Zipf/Pareto distribution of application popularity.
//!
//! The original traces are not publicly available, so this crate generates
//! faithful synthetic equivalents: a diurnal load profile with day-to-day
//! variation ([`hotmail`]), an episodic interference schedule with tunable
//! intensity ([`ec2`]), and arrival streams built on the samplers in the
//! `analytics` crate ([`arrivals`]).

pub mod arrivals;
pub mod ec2;
pub mod hotmail;

pub use arrivals::{ec2_sessions, hotmail_sessions, ArrivalModel, VmArrival, VmSession};
pub use ec2::{InterferenceEpisode, InterferenceSchedule};
pub use hotmail::LoadTrace;
