//! Diurnal load-intensity traces in the style of the HotMail traces.
//!
//! The paper replays Microsoft HotMail load traces from September 2009:
//! hourly averages of the aggregated load across thousands of servers,
//! normalized so that the maximum number of active sessions stays within the
//! testbed's capacity (§5.1).  We generate a synthetic equivalent with the
//! same relevant structure: a strong diurnal cycle (quiet nights, busy
//! afternoons), mild day-to-day variation, and small per-hour noise, scaled
//! into `[min_load, max_load]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A load-intensity trace sampled at one-hour granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    /// Load level per hour, each in `[0, 1]` (fraction of peak capacity).
    pub hourly_load: Vec<f64>,
}

impl LoadTrace {
    /// Generates a diurnal trace spanning `days` days.
    ///
    /// * `min_load` / `max_load` — the trough and peak of the diurnal cycle.
    /// * `seed` — RNG seed for the hour-level noise and day-level variation.
    ///
    /// # Panics
    /// Panics if the bounds are not `0 ≤ min < max ≤ 1` or `days` is zero.
    pub fn diurnal(days: usize, min_load: f64, max_load: f64, seed: u64) -> Self {
        assert!(days > 0, "trace must span at least one day");
        assert!(
            (0.0..1.0).contains(&min_load) && min_load < max_load && max_load <= 1.0,
            "load bounds must satisfy 0 <= min < max <= 1"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hourly = Vec::with_capacity(days * 24);
        for _day in 0..days {
            // Day-to-day amplitude wobble of up to ±10%.
            let day_scale = 1.0 + rng.gen_range(-0.1..=0.1);
            for hour in 0..24 {
                // Peak around 15:00, trough around 03:00 local time.
                let phase = (hour as f64 - 15.0) / 24.0 * std::f64::consts::TAU;
                let diurnal = 0.5 * (1.0 + phase.cos());
                let noise = rng.gen_range(-0.03..=0.03);
                let level = min_load + (max_load - min_load) * (diurnal * day_scale + noise);
                hourly.push(level.clamp(0.0, 1.0));
            }
        }
        Self {
            hourly_load: hourly,
        }
    }

    /// A constant-load trace (used for the EC2 motivation experiment, where
    /// the workload and resources are fixed and only interference varies).
    pub fn constant(days: usize, load: f64) -> Self {
        assert!(days > 0, "trace must span at least one day");
        assert!((0.0..=1.0).contains(&load), "load must be in [0, 1]");
        Self {
            hourly_load: vec![load; days * 24],
        }
    }

    /// Load level at a given epoch (one epoch = one second), holding each
    /// hourly value for the whole hour and wrapping around at the end of the
    /// trace.
    pub fn load_at_epoch(&self, epoch: u64) -> f64 {
        let hour = (epoch / 3_600) as usize % self.hourly_load.len();
        self.hourly_load[hour]
    }

    /// Load level for a given hour index (wrapping).
    pub fn load_at_hour(&self, hour: usize) -> f64 {
        self.hourly_load[hour % self.hourly_load.len()]
    }

    /// Number of hours in the trace.
    pub fn hours(&self) -> usize {
        self.hourly_load.len()
    }

    /// Peak load in the trace.
    pub fn peak(&self) -> f64 {
        self.hourly_load.iter().cloned().fold(0.0, f64::max)
    }

    /// Trough load in the trace.
    pub fn trough(&self) -> f64 {
        self.hourly_load.iter().cloned().fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_trace_has_expected_length_and_range() {
        let t = LoadTrace::diurnal(3, 0.2, 0.9, 1);
        assert_eq!(t.hours(), 72);
        assert!(t.hourly_load.iter().all(|l| (0.0..=1.0).contains(l)));
        assert!(t.peak() > 0.7, "peak {}", t.peak());
        assert!(t.trough() < 0.4, "trough {}", t.trough());
    }

    #[test]
    fn afternoon_is_busier_than_night() {
        let t = LoadTrace::diurnal(3, 0.2, 0.9, 7);
        // Average 15:00 load across days vs average 03:00 load.
        let afternoon: f64 = (0..3).map(|d| t.load_at_hour(d * 24 + 15)).sum::<f64>() / 3.0;
        let night: f64 = (0..3).map(|d| t.load_at_hour(d * 24 + 3)).sum::<f64>() / 3.0;
        assert!(
            afternoon > night + 0.3,
            "afternoon {afternoon} vs night {night}"
        );
    }

    #[test]
    fn epoch_lookup_holds_hourly_value_and_wraps() {
        let t = LoadTrace::diurnal(1, 0.2, 0.8, 3);
        assert_eq!(t.load_at_epoch(0), t.load_at_hour(0));
        assert_eq!(t.load_at_epoch(3_599), t.load_at_hour(0));
        assert_eq!(t.load_at_epoch(3_600), t.load_at_hour(1));
        // Wraps after 24 hours.
        assert_eq!(t.load_at_epoch(24 * 3_600), t.load_at_hour(0));
    }

    #[test]
    fn constant_trace_is_flat() {
        let t = LoadTrace::constant(2, 0.6);
        assert_eq!(t.hours(), 48);
        assert!(t.hourly_load.iter().all(|l| (*l - 0.6).abs() < 1e-12));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            LoadTrace::diurnal(2, 0.1, 0.9, 5),
            LoadTrace::diurnal(2, 0.1, 0.9, 5)
        );
        assert_ne!(
            LoadTrace::diurnal(2, 0.1, 0.9, 5),
            LoadTrace::diurnal(2, 0.1, 0.9, 6)
        );
    }

    #[test]
    #[should_panic(expected = "load bounds")]
    fn invalid_bounds_rejected() {
        LoadTrace::diurnal(1, 0.9, 0.5, 1);
    }
}
