//! EC2-style interference-episode schedules.
//!
//! Section 5.1: the authors rented Amazon EC2 instances, ran their Data
//! Serving workload for three days, and labelled every interval whose
//! client-reported degradation exceeded 20% as a performance crisis.  Those
//! time slots — and the measured degradation depths — then drive *when* and
//! *how hard* the stress workloads are switched on in the testbed
//! experiments (Figs. 1 and 8).
//!
//! This module generates the equivalent schedule: a set of non-overlapping
//! episodes at random times of day, each with a duration and an intensity in
//! a configurable range.  The intensity is later mapped onto a stress
//! workload input (working-set size, Mbps, MB/s) by the evaluation harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One contiguous period during which a co-located aggressor is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceEpisode {
    /// Episode start, in seconds from the beginning of the schedule.
    pub start_s: u64,
    /// Episode duration in seconds.
    pub duration_s: u64,
    /// Interference intensity in `[0, 1]`; 0 maps to the mildest stress
    /// configuration the paper uses, 1 to the harshest.
    pub intensity: f64,
}

impl InterferenceEpisode {
    /// Episode end (exclusive), in seconds.
    pub fn end_s(&self) -> u64 {
        self.start_s + self.duration_s
    }

    /// True when `t` (seconds) falls inside the episode.
    pub fn contains(&self, t: u64) -> bool {
        t >= self.start_s && t < self.end_s()
    }
}

/// A full schedule of interference episodes over an experiment horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSchedule {
    /// Episodes ordered by start time, non-overlapping.
    pub episodes: Vec<InterferenceEpisode>,
    /// Total schedule horizon in seconds.
    pub horizon_s: u64,
}

impl InterferenceSchedule {
    /// Generates a schedule of `episodes_per_day` episodes per day over
    /// `days` days, each lasting between `min_duration_s` and
    /// `max_duration_s`, with intensities uniform in `[0.1, 1.0]`.
    ///
    /// Episodes are placed at random offsets and pushed forward if they would
    /// overlap a previous episode, mirroring the sporadic, non-overlapping
    /// crises visible in the paper's Figure 1.
    ///
    /// # Panics
    /// Panics on a zero horizon, zero episodes, or inverted duration bounds.
    pub fn generate(
        days: usize,
        episodes_per_day: usize,
        min_duration_s: u64,
        max_duration_s: u64,
        seed: u64,
    ) -> Self {
        assert!(days > 0, "schedule must span at least one day");
        assert!(episodes_per_day > 0, "need at least one episode per day");
        assert!(
            min_duration_s > 0 && min_duration_s <= max_duration_s,
            "invalid duration bounds"
        );
        let horizon_s = days as u64 * 86_400;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut episodes: Vec<InterferenceEpisode> = Vec::new();
        for day in 0..days as u64 {
            for _ in 0..episodes_per_day {
                let duration = rng.gen_range(min_duration_s..=max_duration_s);
                let latest_start = 86_400_u64.saturating_sub(duration).max(1);
                let mut start = day * 86_400 + rng.gen_range(0..latest_start);
                // Push forward past any previously placed overlapping episode.
                loop {
                    let overlaps = episodes
                        .iter()
                        .find(|e| start < e.end_s() && start + duration > e.start_s);
                    match overlaps {
                        Some(e) => start = e.end_s() + 60,
                        None => break,
                    }
                }
                if start + duration > horizon_s {
                    continue; // Dropped: would run past the horizon.
                }
                episodes.push(InterferenceEpisode {
                    start_s: start,
                    duration_s: duration,
                    intensity: rng.gen_range(0.1..=1.0),
                });
            }
        }
        episodes.sort_by_key(|e| e.start_s);
        Self {
            episodes,
            horizon_s,
        }
    }

    /// The active episode at time `t` (seconds), if any.
    pub fn active_at(&self, t: u64) -> Option<&InterferenceEpisode> {
        self.episodes.iter().find(|e| e.contains(t))
    }

    /// Interference intensity at time `t`; zero outside every episode.
    pub fn intensity_at(&self, t: u64) -> f64 {
        self.active_at(t).map(|e| e.intensity).unwrap_or(0.0)
    }

    /// Fraction of the horizon covered by episodes.
    pub fn coverage(&self) -> f64 {
        if self.horizon_s == 0 {
            return 0.0;
        }
        let covered: u64 = self.episodes.iter().map(|e| e.duration_s).sum();
        covered as f64 / self.horizon_s as f64
    }

    /// Episodes that start within day `day` (0-based).
    pub fn episodes_on_day(&self, day: usize) -> Vec<&InterferenceEpisode> {
        let start = day as u64 * 86_400;
        let end = start + 86_400;
        self.episodes
            .iter()
            .filter(|e| e.start_s >= start && e.start_s < end)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_volume_of_episodes() {
        let s = InterferenceSchedule::generate(3, 4, 600, 1_800, 1);
        assert!(s.episodes.len() >= 9, "got {}", s.episodes.len());
        assert!(s.episodes.len() <= 12);
        assert_eq!(s.horizon_s, 3 * 86_400);
    }

    #[test]
    fn episodes_do_not_overlap_and_are_sorted() {
        let s = InterferenceSchedule::generate(3, 6, 600, 3_600, 7);
        for w in s.episodes.windows(2) {
            assert!(w[0].end_s() <= w[1].start_s, "episodes overlap: {:?}", w);
        }
    }

    #[test]
    fn intensity_is_zero_outside_episodes_and_positive_inside() {
        let s = InterferenceSchedule::generate(1, 2, 600, 1_200, 3);
        let e = &s.episodes[0];
        assert!(s.intensity_at(e.start_s) > 0.0);
        assert!(s.intensity_at(e.end_s()) == 0.0 || s.active_at(e.end_s()).is_some());
        if e.start_s > 0 {
            assert_eq!(s.intensity_at(e.start_s - 1), 0.0);
        }
    }

    #[test]
    fn coverage_is_a_sane_fraction() {
        let s = InterferenceSchedule::generate(3, 4, 600, 1_800, 11);
        assert!(s.coverage() > 0.0);
        assert!(s.coverage() < 0.5, "coverage {}", s.coverage());
    }

    #[test]
    fn episodes_on_day_partitions_the_schedule() {
        let s = InterferenceSchedule::generate(3, 3, 600, 1_200, 13);
        let total: usize = (0..3).map(|d| s.episodes_on_day(d).len()).sum();
        assert_eq!(total, s.episodes.len());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            InterferenceSchedule::generate(2, 3, 600, 1_200, 5),
            InterferenceSchedule::generate(2, 3, 600, 1_200, 5)
        );
    }

    #[test]
    fn episode_contains_is_half_open() {
        let e = InterferenceEpisode {
            start_s: 100,
            duration_s: 50,
            intensity: 0.5,
        };
        assert!(e.contains(100));
        assert!(e.contains(149));
        assert!(!e.contains(150));
        assert!(!e.contains(99));
    }

    #[test]
    #[should_panic(expected = "invalid duration bounds")]
    fn inverted_durations_rejected() {
        InterferenceSchedule::generate(1, 1, 100, 50, 1);
    }
}
