//! VM-arrival traces for the profiling-scalability experiments.
//!
//! Figures 13 and 14 model a datacenter receiving 1000 new VMs per day.
//! Each arriving VM runs some application; how many *other* VMs run the same
//! application follows a Zipf/Pareto popularity distribution (the paper
//! sweeps the tail index α from 1.0 to 2.5, plus the "no global information"
//! case where every VM is unique).  The arrival instants follow either a
//! Poisson process (Fig. 13) or a burstier lognormal process (Fig. 14).
//!
//! This module turns those ingredients into a concrete [`VmArrival`] stream
//! consumed by the queueing simulator — and, for the event-driven
//! datacenter front end, into full [`VmSession`] lifecycles (arrival,
//! active lifetime at some load, departure) via the [`hotmail_sessions`]
//! and [`ec2_sessions`] presets.

use analytics::distributions::{lognormal_arrivals, lognormal_durations, poisson_arrivals, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::hotmail::LoadTrace;

/// Which inter-arrival process generates the stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Memoryless arrivals (Fig. 13).
    Poisson,
    /// Bursty lognormal arrivals with the given sigma (Fig. 14; the paper
    /// calls this the "burstier VM-arrival distribution").
    Lognormal {
        /// Shape parameter of the lognormal inter-arrival distribution.
        sigma: f64,
    },
}

/// One VM arriving at the datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmArrival {
    /// Arrival time in seconds from the start of the experiment.
    pub arrival_s: f64,
    /// Application (popularity rank) the VM runs; VMs with the same
    /// `app_rank` run the same code, which is what lets DeepDive reuse
    /// behaviour learned from one of them for the others.
    pub app_rank: usize,
}

/// Generates an arrival stream.
///
/// * `arrivals_per_day` — mean arrival rate (the paper uses 1000/day).
/// * `horizon_days` — experiment length.
/// * `model` — Poisson or lognormal inter-arrivals.
/// * `popularity` — `Some((n_apps, alpha))` draws each VM's application from
///   a Zipf distribution over `n_apps` ranks with tail index `alpha`;
///   `None` models the "no global information" case where every VM runs a
///   distinct application (each arrival gets a unique rank).
/// * `seed` — RNG seed.
pub fn generate_arrivals(
    arrivals_per_day: f64,
    horizon_days: f64,
    model: ArrivalModel,
    popularity: Option<(usize, f64)>,
    seed: u64,
) -> Vec<VmArrival> {
    assert!(arrivals_per_day > 0.0, "arrival rate must be positive");
    assert!(horizon_days > 0.0, "horizon must be positive");
    let horizon_s = horizon_days * 86_400.0;
    let times = match model {
        ArrivalModel::Poisson => poisson_arrivals(arrivals_per_day, horizon_s, seed),
        ArrivalModel::Lognormal { sigma } => {
            lognormal_arrivals(arrivals_per_day, horizon_s, sigma, seed)
        }
    };
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
    let zipf = popularity.map(|(n, alpha)| Zipf::new(n, alpha));
    times
        .into_iter()
        .enumerate()
        .map(|(i, arrival_s)| VmArrival {
            arrival_s,
            app_rank: match &zipf {
                Some(z) => z.sample(&mut rng),
                // Unique application per VM: global information never helps.
                None => i + 1,
            },
        })
        .collect()
}

/// One VM's full lifecycle at the datacenter front end: it arrives, runs
/// its application at `active_load` until its lifetime elapses, and then
/// departs.  Consumed by the event-driven datacenter service, which turns
/// sessions into placements, per-epoch offered loads and deallocations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSession {
    /// Arrival time in seconds from the start of the experiment.
    pub arrival_s: f64,
    /// How long the VM stays, in seconds (heavy-tailed in both presets:
    /// most sessions are short, a few near-permanent).
    pub lifetime_s: f64,
    /// Offered load in `[0, 1]` while the VM is alive.
    pub active_load: f64,
    /// Application (popularity rank) the VM runs; same meaning as
    /// [`VmArrival::app_rank`].
    pub app_rank: usize,
}

impl VmSession {
    /// The instant the VM leaves the datacenter.
    pub fn departure_s(&self) -> f64 {
        self.arrival_s + self.lifetime_s
    }
}

/// Hotmail-style session preset: Poisson arrivals thinned by the diurnal
/// load pattern of Fig. 2 (nights and weekends arrive fewer VMs), lognormal
/// lifetimes with a 2-hour median, and per-VM active loads that track the
/// diurnal intensity at arrival time.  Applications follow a concentrated
/// Zipf (α = 1.8, 500 apps) — mail-farm fleets run many instances of few
/// binaries.
///
/// `arrivals_per_day` is the **peak** rate; diurnal thinning brings the
/// realized average below it.  Sessions come back sorted by arrival.
pub fn hotmail_sessions(arrivals_per_day: f64, horizon_days: f64, seed: u64) -> Vec<VmSession> {
    let trace_days = horizon_days.ceil().max(1.0) as usize;
    let trace = LoadTrace::diurnal(trace_days, 0.25, 1.0, seed);
    let base = poisson_arrivals(arrivals_per_day, horizon_days * 86_400.0, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x4077));
    let zipf = Zipf::new(500, 1.8);
    let kept: Vec<f64> = base
        .into_iter()
        .filter(|&t| {
            let intensity = trace.load_at_epoch(t as u64);
            rng.gen_range(0.0..1.0) < intensity
        })
        .collect();
    let lifetimes = lognormal_durations(7_200.0, 1.2, kept.len(), seed.wrapping_add(0x11fe));
    kept.into_iter()
        .zip(lifetimes)
        .map(|(arrival_s, lifetime_s)| VmSession {
            arrival_s,
            lifetime_s,
            active_load: (trace.load_at_epoch(arrival_s as u64) * rng.gen_range(0.8..=1.0))
                .clamp(0.0, 1.0),
            app_rank: zipf.sample(&mut rng),
        })
        .collect()
}

/// EC2-style session preset: bursty lognormal arrivals (σ = 2 gaps — the
/// clumpy "burstier workload behaviors" of Fig. 14), heavier-tailed
/// lifetimes (1-hour median, σ = 2: lots of short-lived instances plus a
/// long-running tail) and a flat Zipf over many applications (α = 1.1,
/// 2000 apps — public-cloud tenants are diverse).  Active loads are drawn
/// uniformly from `[0.3, 0.9]` per VM, independent of arrival time.
///
/// Sessions come back sorted by arrival.
pub fn ec2_sessions(arrivals_per_day: f64, horizon_days: f64, seed: u64) -> Vec<VmSession> {
    let arrivals = lognormal_arrivals(arrivals_per_day, horizon_days * 86_400.0, 2.0, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xec2));
    let zipf = Zipf::new(2_000, 1.1);
    let lifetimes = lognormal_durations(3_600.0, 2.0, arrivals.len(), seed.wrapping_add(0x11fe));
    arrivals
        .into_iter()
        .zip(lifetimes)
        .map(|(arrival_s, lifetime_s)| VmSession {
            arrival_s,
            lifetime_s,
            active_load: rng.gen_range(0.3..=0.9),
            app_rank: zipf.sample(&mut rng),
        })
        .collect()
}

/// Fraction of arrivals whose application has already been seen earlier in
/// the stream — exactly the fraction of analyzer invocations that global
/// information can skip once the first VM of each application is profiled.
pub fn repeat_fraction(arrivals: &[VmArrival]) -> f64 {
    if arrivals.is_empty() {
        return 0.0;
    }
    let mut seen = std::collections::HashSet::new();
    let mut repeats = 0usize;
    for a in arrivals {
        if !seen.insert(a.app_rank) {
            repeats += 1;
        }
    }
    repeats as f64 / arrivals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_stream_matches_requested_rate() {
        let arr = generate_arrivals(1_000.0, 3.0, ArrivalModel::Poisson, Some((200, 1.5)), 1);
        assert!((2_600..3_400).contains(&arr.len()), "got {}", arr.len());
        assert!(arr.windows(2).all(|w| w[1].arrival_s >= w[0].arrival_s));
    }

    #[test]
    fn unique_apps_never_repeat() {
        let arr = generate_arrivals(500.0, 1.0, ArrivalModel::Poisson, None, 2);
        assert_eq!(repeat_fraction(&arr), 0.0);
        let ranks: std::collections::HashSet<usize> = arr.iter().map(|a| a.app_rank).collect();
        assert_eq!(ranks.len(), arr.len());
    }

    #[test]
    fn heavier_tails_mean_more_repeats() {
        let light = generate_arrivals(1_000.0, 2.0, ArrivalModel::Poisson, Some((500, 1.0)), 3);
        let heavy = generate_arrivals(1_000.0, 2.0, ArrivalModel::Poisson, Some((500, 2.5)), 3);
        // With α = 2.5 almost all VMs run the handful of head applications,
        // so far more arrivals are repeats than under α = 1.0.
        assert!(repeat_fraction(&heavy) > repeat_fraction(&light));
        assert!(
            repeat_fraction(&heavy) > 0.8,
            "heavy {}",
            repeat_fraction(&heavy)
        );
    }

    #[test]
    fn lognormal_stream_is_generated_and_ordered() {
        let arr = generate_arrivals(
            1_000.0,
            1.0,
            ArrivalModel::Lognormal { sigma: 2.0 },
            Some((100, 1.5)),
            4,
        );
        assert!(!arr.is_empty());
        assert!(arr.windows(2).all(|w| w[1].arrival_s >= w[0].arrival_s));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_arrivals(200.0, 1.0, ArrivalModel::Poisson, Some((50, 1.2)), 9);
        let b = generate_arrivals(200.0, 1.0, ArrivalModel::Poisson, Some((50, 1.2)), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn repeat_fraction_of_empty_stream_is_zero() {
        assert_eq!(repeat_fraction(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        generate_arrivals(0.0, 1.0, ArrivalModel::Poisson, None, 1);
    }

    #[test]
    fn hotmail_sessions_are_sorted_deterministic_and_diurnally_thinned() {
        let sessions = hotmail_sessions(4_000.0, 2.0, 17);
        assert!(!sessions.is_empty());
        assert!(sessions
            .windows(2)
            .all(|w| w[1].arrival_s >= w[0].arrival_s));
        assert_eq!(sessions, hotmail_sessions(4_000.0, 2.0, 17));
        for s in &sessions {
            assert!(s.lifetime_s > 0.0);
            assert!((0.0..=1.0).contains(&s.active_load));
            assert!(s.departure_s() > s.arrival_s);
            assert!(s.app_rank >= 1 && s.app_rank <= 500);
        }
        // Thinning keeps strictly fewer VMs than the peak-rate stream, but
        // the diurnal trough (0.25) bounds how many it can drop.
        let n = sessions.len() as f64;
        assert!(n < 8_000.0, "thinning must discard some arrivals, got {n}");
        assert!(n > 2_000.0 * 0.8, "thinning dropped too much, got {n}");
    }

    #[test]
    fn ec2_sessions_are_burstier_and_more_diverse_than_hotmail() {
        let hotmail = hotmail_sessions(2_000.0, 2.0, 23);
        let ec2 = ec2_sessions(2_000.0, 2.0, 23);
        assert!(!ec2.is_empty());
        assert!(ec2.windows(2).all(|w| w[1].arrival_s >= w[0].arrival_s));
        assert_eq!(ec2, ec2_sessions(2_000.0, 2.0, 23));
        let spread = |s: &[VmSession]| {
            s.iter()
                .map(|v| v.app_rank)
                .collect::<std::collections::HashSet<_>>()
                .len() as f64
                / s.len() as f64
        };
        assert!(
            spread(&ec2) > spread(&hotmail),
            "EC2 app mix must be flatter: {} vs {}",
            spread(&ec2),
            spread(&hotmail)
        );
        let gaps = |s: &[VmSession]| s.iter().map(|v| v.arrival_s).collect::<Vec<_>>();
        assert!(
            analytics::distributions::burstiness(&gaps(&ec2))
                > analytics::distributions::burstiness(&gaps(&hotmail)),
            "lognormal arrivals must clump more than thinned Poisson"
        );
    }
}
