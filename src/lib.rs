#![forbid(unsafe_code)]
//! Umbrella crate for the DeepDive reproduction workspace.
//!
//! Reproduces *DeepDive: Transparently Identifying and Managing Performance
//! Interference in Virtualized Environments* (Novakovic et al., USENIX ATC
//! '13) as a deterministic simulation: a warning system that watches
//! normalized per-VM hardware metrics, a sandboxed interference analyzer
//! that confirms and attributes interference, and a placement manager that
//! evaluates migrations with a regression-trained synthetic benchmark —
//! without ever test-migrating the real VM.
//!
//! A one-page map of the workspace — layer diagram, determinism contract,
//! simlint rule table, bench/validator data flow — lives in
//! `ARCHITECTURE.md` at the repository root.
//!
//! # Building and testing
//!
//! The workspace is fully self-contained (no crates.io access needed; see
//! *Dependency shims* below). From the repository root:
//!
//! ```text
//! cargo build --release      # builds all 17 workspace crates
//! cargo test -q              # ~560 unit + integration + doc tests, < 30 s
//! cargo bench --no-run       # compiles the benches (13 figure/table + 4 throughput)
//! cargo bench                # re-runs every paper experiment with timings
//! cargo run --example quickstart
//! cargo run -p simlint       # static analysis: determinism + unsafety contracts
//! cargo doc --workspace --no-deps   # rustdoc; CI denies warnings
//! cargo clippy --workspace --all-targets -- -D warnings
//! cargo fmt --check
//! ```
//!
//! # Workspace layout and dependency graph
//!
//! Leaf crates at the top; each crate depends only on the ones above it:
//!
//! ```text
//! hwsim                                  (machine + counter substrate)
//!   └─► workloads                        (cloud + stress workloads)
//! analytics                              (clustering, regression, dists)
//!   └─► traces ─► queueing               (arrival traces; queueing model)
//! hwsim + workloads + traces + queueing
//!   └─► cloudsim                         (VMs, PMs, service, sandbox)
//! hwsim + workloads + cloudsim + analytics
//!   └─► deepdive                         (the paper's contribution)
//! everything
//!   └─► bench                            (per-figure experiment harness)
//! ```
//!
//! `simlint` (the static-analysis binary, see below) stands alone: it
//! depends on no workspace crate and nothing depends on it.
//!
//! The root package (`deepdive-repro`) re-exports every member so the
//! repository-level `examples/` and `tests/` can exercise the whole system
//! through one dependency.
//!
//! # The epoch-stepping hot path
//!
//! Everything the simulation does funnels through resolving one epoch of
//! hardware contention per machine, so that pipeline is built for reuse and
//! for parallelism:
//!
//! * **Allocation-free resolution** — `hwsim::EpochResolver` is a stateful
//!   object (one per machine model) owning every scratch buffer resolution
//!   needs — per-cache-group membership lists, effective-MPKI/miss vectors,
//!   per-device outcome buffers — and exposing
//!   `resolve_into(&mut self, placements, epoch_seconds, &mut out)`.
//!   Steady-state resolution performs **zero heap allocations**. The
//!   stateless `hwsim::contention::resolve_epoch` wrappers remain for
//!   one-shot callers and delegate to a thread-local resolver.
//!   `cloudsim::pm::PhysicalMachine` holds its own resolver plus
//!   demand/placement buffers across epochs; the sandbox replayer and
//!   `deepdive`'s synthetic-benchmark training reuse one resolver across
//!   all their solo runs. Measured by `cargo bench -p bench --bench
//!   resolver_throughput` (dumps `BENCH_resolver.json`); pinned
//!   bit-identical to the pre-refactor pipeline by
//!   `crates/hwsim/tests/resolver_equivalence.rs`.
//! * **Order-independent RNG streams** — `cloudsim::rngs::ClusterSeed`
//!   derives an independent `StdRng` per `(vm, epoch)` via SplitMix64-style
//!   hashing of `(cluster seed, vm id, epoch)`, so a VM's demand sequence
//!   is a pure function of its identity — not of its placement, its
//!   neighbours, or the order machines are stepped in. A mid-run migration
//!   cannot perturb any other VM's stream (pinned by
//!   `tests/engine_equivalence.rs`).
//! * **The parallel epoch engine** — `cloudsim::engine::EpochEngine` steps
//!   a cluster under `ExecutionMode::Serial`, `ExecutionMode::Sharded {
//!   threads }` (scoped threads spawned per call — the baseline) or
//!   `ExecutionMode::Pooled { threads }` (the production mode): a
//!   persistent `cloudsim::WorkerPool` with per-worker queues and an
//!   epoch-barrier scatter, stepping balanced contiguous machine shards
//!   (`pool::split_balanced` — exactly `threads` shards whenever enough
//!   machines exist) and merging reports in machine-index order, output
//!   **bit-identical** across all modes (a proptest pins Serial vs
//!   Sharded vs Pooled at several thread counts). The pool joins its
//!   workers on drop, and a panicking shard reaches the barrier first,
//!   then re-raises the original payload without poisoning the workers
//!   (`tests/pool_lifecycle.rs`). `EpochEngine::step_epochs` batches a
//!   whole epoch horizon into one handoff for callers that do not mutate
//!   the cluster between epochs.
//!   The `CLOUDSIM_THREADS` env var selects the mode where callers defer
//!   to `ExecutionMode::from_env()` (unset: `Pooled` over all available
//!   cores; malformed values are a hard error, never a silent fallback).
//!   Measured by `cargo bench -p bench --bench cluster_throughput`
//!   (64–512-machine fleets at real density, serial vs sharded vs pooled
//!   at 1/2/4/8 threads, plus migration churn; dumps `BENCH_cluster.json`
//!   with the runner's `available_parallelism`, and `threads > 1` rows on
//!   a 1-core runner are flagged `overhead_only` so they are never
//!   mistaken for scaling data).
//! * **O(1) bookkeeping** — `cloudsim::Cluster` keeps id→index maps so VM
//!   location and machine lookups are O(1) per migration instead of scans.
//! * **Incremental control plane** — the warning path (every VM, every
//!   epoch) is generation-checked and warm-started:
//!   `deepdive::BehaviorRepository` keeps a per-application generation
//!   counter (ring-buffer entries, O(1) eviction) and hands out
//!   `&AppBehaviors` borrows instead of clones, so
//!   `WarningSystem::refresh_model` is O(1) while the repository is
//!   unchanged; when it grew, the constrained EM refit is warm-started
//!   from the previous mixture (`analytics::GaussianMixture::fit_warm`,
//!   ~10 iterations vs a 100-iteration k-means++ cold fit), with a full
//!   cold refit every `WarningConfig::cold_refit_interval` refits to
//!   bound drift.  `DeepDive::process_epoch` refreshes once per
//!   application per epoch (not per VM) and runs the whole sweep out of
//!   reusable scratch, so the steady-state warning path allocates
//!   nothing.  Measured by `cargo bench -p bench --bench
//!   controller_throughput` (dumps `BENCH_controller.json`): ~8.6×
//!   evaluations/sec at 1024 VMs over the cold-refit baseline.
//!   When the controller is handed the engine's pool
//!   (`DeepDive::use_worker_pool`), the per-app refits of one epoch fan
//!   out over it (`WarningSystem::refresh_models` — pure fits scattered,
//!   results installed serially in input order, bit-identical to the
//!   serial loop by proptest), and synthetic-benchmark training fans out
//!   too: across machine models at pretrain time
//!   (`DeepDive::pretrain_benchmarks`) and across samples within one
//!   model (`SyntheticBenchmark::train_with_pool`), on top of the older
//!   scoped-thread path (`DEEPDIVE_TRAIN_THREADS`) — per-sample
//!   SplitMix64 streams keep every variant bit-identical to serial.
//! * **Spec-aware sandbox fleets** — the analyzer's degradation estimate
//!   divides production instruction rates by isolation rates, which is
//!   only sound when the clone replays on the victim's host machine
//!   model.  `cloudsim::SandboxFleet` therefore holds one sandbox pool
//!   per model in the cluster (`DeepDive::for_cluster` derives it;
//!   `From<Sandbox>` keeps the uniform single-pool path, pinned
//!   bit-identical on homogeneous clusters by `tests/sandbox_fleet.rs`),
//!   and the controller routes each analysis to the matching pool,
//!   trains one synthetic benchmark per model, predicts placements
//!   against each candidate's own spec, and accounts profiling seconds
//!   per pool.  Cross-model fallbacks — the old biased path, which can
//!   miss ~98%-degradation episodes outright when the victim's host is
//!   the faster machine for the workload — are counted in
//!   `DeepDiveStats::sandbox_spec_fallbacks`.
//!
//! # Service mode & sparse stepping
//!
//! Fixed fleets stepped in a loop are the benchmark shape; a datacenter is
//! a *service*: VMs arrive, run hot, go idle and depart continuously, and
//! at any instant most machines host only quiet tenants.  Two pieces make
//! that shape first-class:
//!
//! * **The event-driven front end** — `cloudsim::service::DatacenterService`
//!   owns a cluster plus a `queueing::EventQueue` of `traces::VmSession`
//!   lifecycles (the Hotmail and EC2 arrival presets in `traces::arrivals`,
//!   or any custom stream).  Between epochs it drains every due event —
//!   arrivals place VMs first-fit from a rotating scan cursor, lifetime
//!   expiries remove them, hot sessions go idle — then steps the engine
//!   once over the surviving fleet; `ServiceStats` tracks arrivals,
//!   departures, rejections, VM-epochs and the peak resident population.
//!   `deepdive::ManagedDatacenter` closes the control loop on top: the
//!   service's per-epoch reports feed `DeepDive::process_epoch`, and
//!   confirmed-interference migrations feed capacity hints back to the
//!   placement cursor.
//! * **Sparse (quiescent-aware) stepping** — a machine whose tenants all
//!   report demand-static workloads at their current loads (idle cloud
//!   apps, constant stressors) resolves once, caches its per-VM reports,
//!   and replays them byte-for-byte until membership, offered loads, or
//!   placement generation change (`EpochEngine::set_sparse`, default on;
//!   dense mode remains for measurement).  For whole idle stretches,
//!   `EpochEngine::advance_epochs` goes further and skips report
//!   materialization entirely — quiescent machines are visited once per
//!   batch, active machines resolve every epoch, and the returned
//!   `AdvanceSummary` accounts resolved vs quiescent machine-epochs.
//!   Both paths are pinned bit-identical to dense serial stepping across
//!   all three execution modes under randomized arrival/departure/
//!   migration churn (`tests/engine_equivalence.rs`).
//!   Measured by `cargo bench -p bench --bench datacenter_throughput`
//!   (dumps `BENCH_datacenter.json`): on a 1-core container at 10k
//!   machines / 40k VMs / 10% activity, the report-free sparse advance
//!   sustains ~33.7M VM-epochs/sec — ~12× the dense per-epoch sweep
//!   (~18× at 100k machines) — while the service loop absorbs ~5.5–10k
//!   VM-arrivals/sec under the trace presets.
//!
//! # Fault model
//!
//! Real datacenters lose machines, botch migrations and take analysis
//! infrastructure offline; the reproduction injects all three as
//! *deterministic simulation inputs* rather than leaving robustness
//! untested:
//!
//! * **The fault plane** — `cloudsim::FaultPlane` is a stateless, `Copy`
//!   schedule: every draw is a SplitMix64 hash of `(fault seed, fault
//!   kind, entity id, epoch)`, so whether machine *m* crashes at epoch *e*
//!   is a pure function of the seed — independent of execution mode,
//!   thread count, query order, or how often the question is asked.
//!   `cloudsim::FaultConfig` sets the rates: machine crash probability and
//!   repair windows, transient migration-failure probability, and
//!   sandbox-pool outage probability and durations.  A plane with all
//!   rates zero (`FaultConfig::disabled`) is byte-for-byte inert, and
//!   attaching no plane at all costs nothing.
//! * **Topology and correlated failures** — `cloudsim::Topology` maps
//!   machine ids to racks and power domains by pure id arithmetic
//!   (`rack = pm / machines_per_rack`, `domain = rack / racks_per_domain`),
//!   so the mapping is stable as the fleet grows.  The plane draws
//!   *correlated* outage windows on the rack and domain streams — one
//!   draw fells every machine behind the failed switch or power feed —
//!   and *planned maintenance drains*: a per-machine notice window during
//!   which the machine keeps serving but accepts no new placements and
//!   migrates residents off incrementally, followed by an offline window.
//!   A drained machine is never crashed; its VMs move gracefully instead
//!   of evacuating in a burst (`ServiceStats::drain_migrations` vs
//!   `evacuations` quantifies the difference).
//! * **Failure-domain spread** — `ServiceConfig::with_spread(topology)`
//!   makes arrival placement prefer machines in power domains where the
//!   app currently has its *fewest* VMs (two-pass next-fit; falls back to
//!   any surviving machine under capacity pressure), and
//!   `deepdive::PlacementManager::with_spread` biases interference
//!   migrations toward acceptable cross-domain destinations.
//!   `cloudsim::audit::check_spread` is the advisory invariant: any app
//!   with ≥ 2 VMs all in one power domain is flagged
//!   (`DatacenterService::audit_spread`).
//! * **Crash handling in the service** — when a machine's crash window
//!   opens, `DatacenterService` drains it and evacuates the residents
//!   first-fit across the surviving fleet; VMs that do not fit park in a
//!   bounded retry queue with exponential backoff (capped, and abandoned
//!   after `RETRY_ATTEMPT_LIMIT` failed placements).  Rejected arrivals
//!   ride the same queue instead of being dropped on the floor.  Repaired
//!   machines rejoin with their placement caches invalidated.
//!   `ServiceStats` accounts the whole story: crashes, repairs,
//!   evacuations, retries, retry admissions, abandonments and
//!   down-machine-epochs.  Unexpected placement errors surface as typed
//!   `cloudsim::ServiceError` records (`DatacenterService::errors`), never
//!   as panics.
//! * **Controller degradation** — during a sandbox-pool outage, `DeepDive`
//!   defers confirmed-warning analyses with a deadline
//!   (`DeepDiveConfig::analysis_deferral_epochs`); if the outage outlives
//!   the deadline the controller falls back to warning-only operation for
//!   that VM (a *degraded decision*, with the usual cooldown) instead of
//!   blocking or crashing.  Transiently failed and capacity-blocked
//!   migrations retry with exponential backoff up to
//!   `DeepDiveConfig::migration_retry_attempts`.  `DeepDiveStats` counts
//!   deferred analyses, degraded decisions and migration retries, and the
//!   epoch event stream reports each transition.
//! * **Invariant auditing** — `cloudsim::audit::check_cluster` sweeps a
//!   cluster for structural corruption (double-resident VMs, phantom
//!   residents, capacity-accounting drift, id-map disagreements);
//!   `DatacenterService::audit` extends it with fault-layer invariants
//!   (parked VMs are not resident, crashed machines are empty).  The
//!   chaos suite runs the audit after every epoch of every randomized
//!   schedule.
//!
//! Measured by the fault rows of `cargo bench -p bench --bench
//! datacenter_throughput`: with a disabled plane attached the service
//! stays within noise of fault-free stepping (idle overhead under 5%,
//! enforced shape via `check_bench_json`), and the blast-radius sweep —
//! independent crashes (`light`), correlated `rack` and `domain` outages,
//! planned `drain`s — reports per-scenario availability, evacuation
//! latency, drain migrations and abandonments (schema reference:
//! `crates/bench/README.md`).  At matched per-machine event rates the
//! drain row lands near the `light` row's availability with **zero**
//! crashes and emergency evacuations.
//!
//! # Test-suite map
//!
//! * per-crate unit tests — each module tests its own invariants (~470
//!   tests across the 9 functional crates and the shims),
//! * `tests/end_to_end.rs` — the full pipeline: learn → detect →
//!   attribute → migrate → recover,
//! * `tests/paper_claims.rs` — the paper's headline qualitative claims
//!   (Fig. 8 detection rates, Fig. 10 clone accuracy, Fig. 11 placement,
//!   Fig. 12 overhead, Figs. 13/14 reaction times),
//! * `tests/properties.rs` — seeded property tests over cross-crate
//!   invariants (well-formed counters, load-scaling invariance,
//!   contention monotonicity, queueing monotonicity),
//! * `tests/persistence.rs` — repository JSON round-trip and the §5.5
//!   "≈5 KB per VM per day" footprint bound,
//! * `tests/engine_equivalence.rs` — proptest: serial, sharded and pooled
//!   stepping bit-identical over arbitrary placements/loads/epochs
//!   (including thread counts that exceed or do not divide the machine
//!   count), sparse stepping bit-identical to dense under randomized
//!   arrival/departure/migration churn in every mode, and migrations
//!   never perturb other VMs' demand streams,
//! * `tests/pool_lifecycle.rs` — worker-pool guarantees: drop joins every
//!   worker (no leaked threads across repeated construction), degenerate
//!   clusters step on the calling thread, zero-epoch batches are no-ops,
//!   and a panicking shard propagates its original payload after the
//!   barrier without advancing the epoch or poisoning the pool,
//! * `tests/fault_tolerance.rs` — the chaos suite: randomized fault +
//!   churn schedules (including random topologies, correlated rack/domain
//!   outages and maintenance drains) through every execution mode with
//!   the invariant audit green after every epoch, Serial/Sharded/Pooled
//!   bit-identical under chaos, a disabled plane reproducing the
//!   fault-free trajectory byte for byte, and deterministic hostile
//!   schedules exercising every fault path (crashes, repairs,
//!   evacuations, retries, correlated outages, drain migrations),
//! * `tests/warning_equivalence.rs` — proptest: warm-started and forced-cold
//!   model refreshes produce equivalent warning *decisions* (detections
//!   always, divergence bounded) over randomized growing repositories, an
//!   unchanged repository generation makes refreshes free, and the pooled
//!   refit sweep is exactly equivalent to the serial refresh loop,
//! * `tests/sandbox_fleet.rs` — spec-aware fleet contracts: on uniform
//!   clusters the derived fleet is bit-identical to the old single-pool
//!   construction (proptest), and on a mixed Xeon+i7 cluster the
//!   spec-matched fleet detects an i7-hosted victim that the frozen
//!   Xeon-only path under-detects to zero,
//! * `crates/bench/tests/figures_smoke.rs` — every figure entry point runs
//!   under plain `cargo test`, not only under Criterion.
//!
//! CI runs the whole suite twice — once default (Serial engine pinned in
//! tests) and once with `CLOUDSIM_THREADS=4 DEEPDIVE_TRAIN_THREADS=4` so
//! the pooled engine and parallel trainer execute multi-threaded — with
//! the fault-tolerance chaos suite called out as a named step in both
//! lanes, and validates the four `BENCH_*.json` throughput dumps with
//! `cargo run -p bench --bin check_bench_json` after the smoke steps.
//!
//! Everything is seeded: a `cloudsim::ClusterSeed` determines every VM's
//! demand stream per `(vm, epoch)`, so the same seed gives the same
//! counters and decisions on every platform, at every thread count, under
//! any placement history. No test depends on wall-clock time or thread
//! order.
//!
//! # Static analysis: the determinism and unsafety contracts
//!
//! The runtime tests above prove the *current* tree is deterministic; the
//! `simlint` crate keeps the next PR from quietly breaking it.
//! `cargo run -p simlint` lexes every non-shim `.rs` file (nested block
//! comments, raw strings, char/byte literals, `#[cfg(test)]` spans — so a
//! `HashMap` in a doc comment never trips a rule) and enforces:
//!
//! * **`wall-clock`** — no `Instant::now`/`SystemTime` outside
//!   `crates/bench` and the worker pool's park-timeout path
//!   (`crates/cloudsim/src/pool.rs`).  Simulated time comes from epochs,
//!   never the host clock.
//! * **`safety-comment`** — every `unsafe` carries a `// SAFETY:` comment
//!   (or `# Safety` doc section) adjacent to its statement.
//! * **`hashmap-iteration`** — no iteration over `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.values()`, `.drain(`, `for … in &map`, …)
//!   in the order-sensitive crates, unless the flagged line — or the line
//!   directly above it — carries a `// simlint: order-independent`
//!   comment stating why hash order cannot reach an observable output.
//!   Iterate a `BTreeMap`, or collect-and-sort, instead.
//! * **`forbid-unsafe`** — every functional crate except `cloudsim` (the
//!   one audited unsafe island, `pool.rs`) declares
//!   `#![forbid(unsafe_code)]` at its crate root.
//! * **`unwrap-budget`** — `.unwrap()`/`.expect(` counts in non-test
//!   library code ratchet against `crates/simlint/unwrap_budget.txt`.
//!   Over budget fails; *under* budget also fails until the baseline is
//!   shrunk to match, so the committed numbers always state the true
//!   ceiling and only move down.
//!
//! Findings print as `file:line: rule-id: message` and exit nonzero.  CI
//! runs the binary before the test lanes, and
//! `crates/simlint/tests/self_check.rs` asserts the committed tree lints
//! clean from inside `cargo test`.
//!
//! # Dependency shims
//!
//! The build environment has no network access, so the handful of external
//! crates the code uses (`rand`, `rand_distr`, `serde`, `serde_json`,
//! `proptest`, `criterion`) are vendored as minimal in-tree stand-ins under
//! `crates/shims/`, exposing exactly the API surface this workspace
//! exercises. Swapping back to the real crates is a `[workspace.dependencies]`
//! edit away; no source file would change.
//!
//! # Crates
//!
//! * [`hwsim`] — physical-machine / performance-counter substrate,
//! * [`workloads`] — cloud and stress workload models,
//! * [`cloudsim`] — VMs, PMs, cluster, sandbox and migration,
//! * [`analytics`] — clustering, regression and distributions,
//! * [`traces`] — load-intensity, interference and arrival traces,
//! * [`deepdive`] — the warning system, interference analyzer and placement
//!   manager (the paper's contribution),
//! * [`queueing`] — the profiling-farm queueing simulator,
//! * [`mod@bench`] — the experiment harness regenerating every figure.

pub use analytics;
pub extern crate bench;
pub use cloudsim;
pub use deepdive;
pub use hwsim;
pub use queueing;
pub use traces;
pub use workloads;
