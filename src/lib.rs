//! Umbrella crate for the DeepDive reproduction workspace.
//!
//! This root package exists so that the repository-level `examples/` and
//! `tests/` directories can exercise every crate through one dependency.  It
//! simply re-exports the workspace crates; see the individual crates for the
//! actual functionality:
//!
//! * [`hwsim`] — physical-machine / performance-counter substrate,
//! * [`workloads`] — cloud and stress workload models,
//! * [`cloudsim`] — VMs, PMs, cluster, sandbox and migration,
//! * [`analytics`] — clustering, regression and distributions,
//! * [`traces`] — load-intensity, interference and arrival traces,
//! * [`deepdive`] — the warning system, interference analyzer and placement
//!   manager (the paper's contribution),
//! * [`queueing`] — the profiling-farm queueing simulator.

pub use analytics;
pub use cloudsim;
pub use deepdive;
pub use hwsim;
pub use queueing;
pub use traces;
pub use workloads;
